"""Mid-call handover experiment: coverage loss under fading and motion (§5k).

H1 injects a radio outage (``interface_down``) into the middle of an
established multi-hop call and measures whether the session survives —
baseline vs. the multihomed handover policy — across clean, fading
(time-domain Gilbert–Elliott) and mobile conditions. The artifact's
claim is the contrast: without handover every coverage-loss event kills
the call's media; with it, the call re-anchors onto the wired uplink in
well under the RTP silence trigger, same RTP session, same SSRC.

The survival criterion is media-based, not signaling-based: a baseline
call whose radio died still *looks* established to SIP (the BYE cannot
escape either), so H1 asks whether inbound media was flowing at the
scheduled end of the talk spurt.
"""

from __future__ import annotations

from repro.core.config import HandoverConfig, SiphocConfig
from repro.experiments.tables import Table
from repro.faults.channel import TimedGilbertElliottChannel
from repro.faults.plan import FaultPlan
from repro.handover.report import build_report, percentile
from repro.scenarios import ManetConfig, ManetScenario
from repro.sip.ua import CallState

#: (label, mean_good, mean_bad, mobility) condition rows of the H1 table.
CONDITIONS: tuple[tuple[str, float | None, float | None, bool], ...] = (
    ("clean", None, None, False),
    ("fading", 1.5, 0.04, False),
    ("mobile", None, None, True),
)


def run_handover_trial(
    handover: bool = True,
    seed: int = 3,
    hops: int = 3,
    mean_good: float | None = None,
    mean_bad: float | None = None,
    mobility: bool = False,
    talk_time: float = 16.0,
    loss_at: float = 12.0,
    routing: str = "aodv",
) -> dict[str, object]:
    """One coverage-loss trial; returns the per-trial observables.

    ``loss_at`` is the absolute sim time the caller's radio dies; the
    call is placed after a 5 s convergence window, so the outage lands a
    few seconds into the established call. A trial that never
    establishes (fades can eat signaling too) reports
    ``established=False`` and is excluded from survival accounting.
    """
    channel = None
    if mean_good is not None and mean_bad is not None:
        channel = TimedGilbertElliottChannel(mean_good=mean_good, mean_bad=mean_bad)
    plan = FaultPlan(channel=channel).interface_down(at=loss_at, node=0)
    scenario = ManetScenario(
        ManetConfig(
            n_nodes=hops + 1,
            topology="chain",
            routing=routing,
            seed=seed,
            multihomed=(0, hops),
            siphoc=SiphocConfig(handover=HandoverConfig()) if handover else None,
            faults=plan,
            mobility=mobility,
            tracing=True,
        )
    )
    scenario.start()
    scenario.add_phone(0, "alice")
    scenario.add_phone(hops, "bob")
    scenario.converge(5.0)
    alice = scenario.phones["alice"]
    call = alice.place_call("sip:bob@voicehoc.ch", duration=talk_time)
    sim = scenario.sim
    sim.run_until(
        lambda: call.state in (CallState.ESTABLISHED, CallState.FAILED),
        timeout=loss_at - sim.now - 1.0,
        step=0.1,
    )
    established = call.state is CallState.ESTABLISHED
    session = alice.media_session(call.call_id)
    call_end = sim.now + talk_time
    sim.run(call_end + 12.0)
    survived = bool(
        established
        and session is not None
        and session.last_rx_at is not None
        and call_end - session.last_rx_at <= 1.0
    )
    trace = scenario.trace
    assert trace is not None
    report = build_report(trace.select(category="handover"))
    scenario.stop()
    return {
        "established": established,
        "survived": survived,
        "loss_events": 1,
        "report": report,
    }


def handover_table(
    seeds: tuple[int, ...] = (1, 2, 3),
    hops: int = 3,
    conditions: tuple[tuple[str, float | None, float | None, bool], ...] = CONDITIONS,
    talk_time: float = 16.0,
    routing: str = "aodv",
) -> Table:
    """H1: call survival across coverage-loss events, baseline vs handover."""
    table = Table(
        title=f"H1: mid-call coverage loss, baseline vs handover ({routing}, {hops} hops)",
        columns=[
            "condition",
            "mode",
            "trials",
            "estab",
            "loss_events",
            "survived",
            "survival_pct",
            "lat_p50_ms",
            "lat_p95_ms",
            "gap_p50_ms",
        ],
    )
    for label, mean_good, mean_bad, mobility in conditions:
        for mode, enabled in (("baseline", False), ("handover", True)):
            established = 0
            survived = 0
            loss_events = 0
            latencies: list[float] = []
            gaps: list[float] = []
            for seed in seeds:
                trial = run_handover_trial(
                    handover=enabled,
                    seed=seed,
                    hops=hops,
                    mean_good=mean_good,
                    mean_bad=mean_bad,
                    mobility=mobility,
                    talk_time=talk_time,
                    routing=routing,
                )
                if not trial["established"]:
                    continue
                established += 1
                loss_events += trial["loss_events"]  # type: ignore[operator]
                survived += 1 if trial["survived"] else 0
                report = trial["report"]
                latencies.extend(report.latencies_ms)  # type: ignore[union-attr]
                gaps.extend(report.gaps_ms)  # type: ignore[union-attr]

            def _pct(values: list[float], q: float) -> float:
                value = percentile(values, q)
                return round(value, 1) if value is not None else float("nan")

            table.add_row(
                label,
                mode,
                len(seeds),
                established,
                loss_events,
                survived,
                round(100.0 * survived / established, 1) if established else float("nan"),
                _pct(latencies, 50),
                _pct(latencies, 95),
                _pct(gaps, 50),
            )
    table.add_note(
        "survival = inbound media still flowing at the scheduled end of the"
        " talk spurt (a dead radio leaves SIP state 'established' either way)"
    )
    table.add_note(
        "one interface_down coverage-loss event is injected per trial;"
        " latency is trigger-to-re-INVITE-confirmed, gap is inbound silence"
    )
    return table
