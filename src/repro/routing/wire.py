"""Low-level binary encoding helpers shared by the routing codecs.

Addresses are encoded as 4-byte IPv4, multi-byte integers are big-endian
(network order), matching RFC 3561 / RFC 3626 conventions.
"""

from __future__ import annotations

import struct

from repro.errors import CodecError


def encode_ip(ip: str) -> bytes:
    try:
        parts = [int(part) for part in ip.split(".")]
    except ValueError as exc:
        raise CodecError(f"invalid IPv4 address {ip!r}") from exc
    if len(parts) != 4 or not all(0 <= part <= 255 for part in parts):
        raise CodecError(f"invalid IPv4 address {ip!r}")
    return bytes(parts)


def decode_ip(data: bytes, offset: int = 0) -> str:
    if len(data) < offset + 4:
        raise CodecError("truncated IPv4 address")
    return ".".join(str(b) for b in data[offset : offset + 4])


class Reader:
    """Sequential binary reader with bounds checking."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    @property
    def remaining(self) -> int:
        return len(self.data) - self.offset

    def _take(self, count: int) -> bytes:
        if self.remaining < count:
            raise CodecError(
                f"truncated message: wanted {count} bytes, {self.remaining} left"
            )
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack("!H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("!I", self._take(4))[0]

    def ip(self) -> str:
        return decode_ip(self._take(4))

    def raw(self, count: int) -> bytes:
        return self._take(count)

    def rest(self) -> bytes:
        return self._take(self.remaining)


class Writer:
    """Sequential binary writer."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "Writer":
        self._parts.append(struct.pack("!B", value))
        return self

    def u16(self, value: int) -> "Writer":
        self._parts.append(struct.pack("!H", value))
        return self

    def u32(self, value: int) -> "Writer":
        self._parts.append(struct.pack("!I", value))
        return self

    def ip(self, ip: str) -> "Writer":
        self._parts.append(encode_ip(ip))
        return self

    def raw(self, data: bytes) -> "Writer":
        self._parts.append(data)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)
