"""OLSR — Optimized Link State Routing (RFC 3626 core).

Implements neighbor sensing via HELLO (asym -> sym two-way handshake),
multipoint relay (MPR) selection with the standard greedy cover, topology
dissemination via TC messages flooded through MPRs, duplicate suppression,
and shortest-path route calculation.

Crucially for SIPHoc, the daemon implements the *default forwarding
algorithm*: messages of unknown type (such as the SLP piggyback message,
type 130) are flooded through the MPR backbone without being understood.
This is what gives MANET SLP network-wide proactive dissemination under
OLSR at near-zero extra packet cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.netsim.node import Node
from repro.netsim.packet import BROADCAST, Packet
from repro.routing.base import Route, RoutingProtocol
from repro.routing.messages import (
    LINK_MPR,
    LINK_SYM,
    OLSR_HELLO,
    OLSR_TC,
    HelloBody,
    OlsrMessage,
    TcBody,
    decode_hello_body,
    decode_olsr_packet,
    decode_tc_body,
    encode_hello_body,
    encode_olsr_packet,
    encode_tc_body,
)

OLSR_PORT = 698


@dataclass
class _LinkInfo:
    asym_until: float = 0.0
    sym_until: float = 0.0

    def is_sym(self, now: float) -> bool:
        return now < self.sym_until

    def is_heard(self, now: float) -> bool:
        return now < self.asym_until or now < self.sym_until


@dataclass
class _TopologyEntry:
    ansn: int
    selectors: set[str] = field(default_factory=set)
    expires_at: float = 0.0


class Olsr(RoutingProtocol):
    """An OLSR routing daemon bound to UDP port 698 on its node."""

    name = "olsr"
    port = OLSR_PORT

    HELLO_INTERVAL = 2.0
    TC_INTERVAL = 5.0
    NEIGHB_HOLD_TIME = 3 * HELLO_INTERVAL
    TOP_HOLD_TIME = 3 * TC_INTERVAL
    DUP_HOLD_TIME = 30.0

    def __init__(self, node: Node) -> None:
        super().__init__(node)
        self._links: dict[str, _LinkInfo] = {}
        self._two_hop: dict[str, tuple[set[str], float]] = {}
        self._mpr_set: set[str] = set()
        self._selectors: dict[str, float] = {}
        self._topology: dict[str, _TopologyEntry] = {}
        self._duplicates: dict[tuple[str, int, int], float] = {}
        self._msg_seq = itertools.count(1)
        self._pkt_seq = itertools.count(1)
        self._ansn = 0
        self._dirty = True
        self._hello_task = None
        self._tc_task = None
        self._retried_uids: set[int] = set()

    @property
    def topology_size(self) -> int:
        """Known TC-advertised origins (metrics gauge)."""
        return len(self._topology)

    @property
    def mpr_count(self) -> int:
        """Current multipoint-relay selection size (metrics gauge)."""
        return len(self._mpr_set)

    # -- lifecycle ------------------------------------------------------------
    def _on_start(self) -> None:
        self._hello_task = self.sim.schedule_periodic(
            self.HELLO_INTERVAL, self._send_hello, jitter=0.1, initial_delay=0.01
        )
        self._tc_task = self.sim.schedule_periodic(
            self.TC_INTERVAL, self._send_tc, jitter=0.1, initial_delay=0.5
        )

    def _on_stop(self) -> None:
        for task in (self._hello_task, self._tc_task):
            if task is not None:
                task.stop()
        self._hello_task = self._tc_task = None

    # -- IP-layer interface ------------------------------------------------------
    def dispatch(self, packet: Packet) -> None:
        if not self.started:
            return
        self._recompute_if_dirty()
        route = self.table.lookup(packet.dst, self.sim.now)
        if route is None:
            self.node.stats.increment("olsr.no_route")
            return
        self.node.link_send(route.next_hop, packet, self._on_link_failure)

    def route_to(self, destination: str):
        self._recompute_if_dirty()
        return super().route_to(destination)

    def _on_link_failure(self, next_hop: str, packet: Packet) -> None:
        if not self.started:
            return  # TX-failure feedback arriving after the daemon stopped
        link = self._links.get(next_hop)
        if link is not None:
            link.sym_until = 0.0
            link.asym_until = 0.0
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("olsr.link_failure", self.node.ip, peer=next_hop)
        self._dirty = True
        if packet.dport == self.port:
            return
        if packet.uid in self._retried_uids:
            self.node.stats.increment("olsr.packet_lost")
            return
        if len(self._retried_uids) > 4096:
            self._retried_uids.clear()
        self._retried_uids.add(packet.uid)
        self.dispatch(packet)

    # -- neighbor queries ----------------------------------------------------------
    def symmetric_neighbors(self) -> list[str]:
        now = self.sim.now
        return [ip for ip, link in self._links.items() if link.is_sym(now)]

    def mpr_selectors(self) -> list[str]:
        now = self.sim.now
        return [ip for ip, expiry in self._selectors.items() if expiry > now]

    @property
    def mpr_set(self) -> set[str]:
        return set(self._mpr_set)

    # -- message emission --------------------------------------------------------------
    def next_message_seq(self) -> int:
        return next(self._msg_seq) & 0xFFFF

    def send_packet(self, messages: list[OlsrMessage]) -> None:
        data = encode_olsr_packet(next(self._pkt_seq) & 0xFFFF, messages)
        self.send_control(BROADCAST, data, ttl=1)

    def _send_hello(self) -> None:
        now = self.sim.now
        links: dict[int, list[str]] = {}
        for ip, link in self._links.items():
            if link.is_sym(now):
                code = LINK_MPR if ip in self._mpr_set else LINK_SYM
            elif link.is_heard(now):
                code = 1  # LINK_ASYM
            else:
                continue
            links.setdefault(code, []).append(ip)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "olsr.hello", self.node.ip,
                links={str(code): sorted(ips) for code, ips in sorted(links.items())},
            )
        body = encode_hello_body(HelloBody(links=links))
        message = OlsrMessage(
            msg_type=OLSR_HELLO,
            orig_ip=self.node.ip,
            seq=self.next_message_seq(),
            body=body,
            vtime=self.NEIGHB_HOLD_TIME,
            ttl=1,
        )
        self.send_packet([message])

    def _send_tc(self) -> None:
        selectors = self.mpr_selectors()
        if not selectors:
            return
        self._ansn = (self._ansn + 1) & 0xFFFF
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "olsr.tc", self.node.ip, ansn=self._ansn,
                selectors=sorted(selectors),
            )
        body = encode_tc_body(TcBody(ansn=self._ansn, neighbors=sorted(selectors)))
        message = OlsrMessage(
            msg_type=OLSR_TC,
            orig_ip=self.node.ip,
            seq=self.next_message_seq(),
            body=body,
            vtime=self.TOP_HOLD_TIME,
            ttl=255,
        )
        self.send_packet([message])

    # -- receive path ---------------------------------------------------------------------
    def _on_datagram(self, data: bytes, src_ip: str, sport: int) -> None:
        if not self.started:
            return
        _, messages = decode_olsr_packet(data)
        forwarded: list[OlsrMessage] = []
        for message in messages:
            if message.orig_ip == self.node.ip:
                continue
            dup_key = (message.orig_ip, message.msg_type, message.seq)
            now = self.sim.now
            is_duplicate = self._duplicates.get(dup_key, 0.0) > now
            self._duplicates[dup_key] = now + self.DUP_HOLD_TIME
            if not is_duplicate:
                self._process_message(message, src_ip)
            if self._should_forward(message, src_ip, is_duplicate):
                forwarded.append(
                    OlsrMessage(
                        msg_type=message.msg_type,
                        orig_ip=message.orig_ip,
                        seq=message.seq,
                        body=message.body,
                        vtime=message.vtime,
                        ttl=message.ttl - 1,
                        hops=message.hops + 1,
                    )
                )
        if forwarded:
            self.node.stats.increment("olsr.messages_forwarded", len(forwarded))
            self.send_packet(forwarded)
        self._gc(self.sim.now)

    def _should_forward(self, message: OlsrMessage, src_ip: str, is_duplicate: bool) -> bool:
        """RFC 3626 default forwarding: relay once, only for MPR selectors."""
        if is_duplicate or message.ttl <= 1:
            return False
        if message.msg_type == OLSR_HELLO:
            return False
        link = self._links.get(src_ip)
        if link is None or not link.is_sym(self.sim.now):
            return False
        return src_ip in self._selectors and self._selectors[src_ip] > self.sim.now

    def _process_message(self, message: OlsrMessage, src_ip: str) -> None:
        if message.msg_type == OLSR_HELLO:
            self._process_hello(message, src_ip)
        elif message.msg_type == OLSR_TC:
            self._process_tc(message)
        # Unknown message types (e.g. SLP piggyback) are not processed here;
        # the netfilter INPUT hook has already seen them, and default
        # forwarding above floods them onward.

    def _process_hello(self, message: OlsrMessage, src_ip: str) -> None:
        now = self.sim.now
        hello = decode_hello_body(message.body)
        link = self._links.setdefault(src_ip, _LinkInfo())
        link.asym_until = now + self.NEIGHB_HOLD_TIME
        mentioned = hello.all_neighbors()
        if self.node.ip in mentioned:
            link.sym_until = now + self.NEIGHB_HOLD_TIME
        sym_neighbors = {
            ip
            for code in (LINK_SYM, LINK_MPR)
            for ip in hello.links.get(code, [])
            if ip != self.node.ip
        }
        self._two_hop[src_ip] = (sym_neighbors, now + self.NEIGHB_HOLD_TIME)
        if self.node.ip in hello.links.get(LINK_MPR, []):
            self._selectors[src_ip] = now + self.NEIGHB_HOLD_TIME
        else:
            self._selectors.pop(src_ip, None)
        self._select_mprs()
        self._dirty = True

    def _process_tc(self, message: OlsrMessage) -> None:
        tc = decode_tc_body(message.body)
        entry = self._topology.get(message.orig_ip)
        if entry is not None and _seq_newer(entry.ansn, tc.ansn):
            return  # stale ANSN
        self._topology[message.orig_ip] = _TopologyEntry(
            ansn=tc.ansn,
            selectors=set(tc.neighbors),
            expires_at=self.sim.now + message.vtime,
        )
        self._dirty = True

    # -- MPR selection -----------------------------------------------------------------------
    def _select_mprs(self) -> None:
        now = self.sim.now
        sym = set(self.symmetric_neighbors())
        coverage: dict[str, set[str]] = {}
        for neighbor in sorted(sym):
            two_hop, expiry = self._two_hop.get(neighbor, (set(), 0.0))
            if expiry <= now:
                continue
            coverage[neighbor] = {
                ip for ip in two_hop if ip != self.node.ip and ip not in sym
            }
        to_cover = set().union(*coverage.values()) if coverage else set()
        mprs: set[str] = set()
        covered: set[str] = set()
        # Nodes that are the sole reach to some 2-hop neighbor are mandatory.
        for target in to_cover:
            providers = [n for n, cov in coverage.items() if target in cov]
            if len(providers) == 1:
                mprs.add(providers[0])
        for mpr in sorted(mprs):
            covered |= coverage.get(mpr, set())
        # Greedily add the neighbor covering the most remaining 2-hop nodes.
        while covered < to_cover:
            best = max(
                (n for n in coverage if n not in mprs),
                key=lambda n: (len(coverage[n] - covered), n),
                default=None,
            )
            if best is None or not (coverage[best] - covered):
                break
            mprs.add(best)
            covered |= coverage[best]
        if mprs != self._mpr_set:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    "olsr.mpr_change", self.node.ip,
                    old=sorted(self._mpr_set), new=sorted(mprs),
                )
        self._mpr_set = mprs

    # -- route calculation --------------------------------------------------------------------
    def _recompute_if_dirty(self) -> None:
        if self._dirty:
            self._recompute_routes()
            self._dirty = False

    def recompute_routes(self) -> None:
        """Force an immediate shortest-path recomputation (mostly for tests)."""
        self._recompute_routes()
        self._dirty = False

    def _recompute_routes(self) -> None:
        now = self.sim.now
        graph: dict[str, set[str]] = {}

        def add_edge(a: str, b: str) -> None:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set()).add(a)

        me = self.node.ip
        for neighbor in self.symmetric_neighbors():
            add_edge(me, neighbor)
        for neighbor, (two_hop, expiry) in self._two_hop.items():
            if expiry <= now:
                continue
            for far in two_hop:
                add_edge(neighbor, far)
        for origin, entry in self._topology.items():
            if entry.expires_at <= now:
                continue
            for selector in entry.selectors:
                add_edge(origin, selector)

        self.table.clear()
        # BFS from self: every edge has cost 1.
        frontier = [me]
        first_hop: dict[str, str] = {me: ""}
        depth = 0
        visited = {me}
        while frontier:
            depth += 1
            next_frontier = []
            for vertex in frontier:
                for peer in sorted(graph.get(vertex, ())):
                    if peer in visited:
                        continue
                    visited.add(peer)
                    hop = peer if vertex == me else first_hop[vertex]
                    first_hop[peer] = hop
                    self.table.upsert(
                        Route(destination=peer, next_hop=hop, hop_count=depth)
                    )
                    next_frontier.append(peer)
            frontier = next_frontier
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "olsr.route_recompute", self.node.ip, routes=len(self.table),
            )

    # -- housekeeping ------------------------------------------------------------------------
    def _gc(self, now: float) -> None:
        if len(self._duplicates) > 2048:
            self._duplicates = {
                key: expiry for key, expiry in self._duplicates.items() if expiry > now
            }


def _seq_newer(existing: int, candidate: int) -> bool:
    """True if ``existing`` ANSN is newer than ``candidate`` (wrap-aware)."""
    return ((existing - candidate) & 0xFFFF) < 0x8000 and existing != candidate
