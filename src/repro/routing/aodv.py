"""AODV — Ad hoc On-demand Distance Vector routing (RFC 3561 core).

Implements route discovery (RREQ flood / RREP unicast), sequence-number
route freshness rules, expanding packet buffering during discovery, route
error propagation on link failure, optional hello beacons, and duplicate
suppression. Piggybacked extensions received on RREQ/RREP are preserved
verbatim when the message is re-flooded/forwarded, which is what lets the
SIPHoc handler plugin ride lookups on route discoveries (Figure 5 of the
paper shows exactly such an RREP).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.node import Node
from repro.netsim.packet import BROADCAST, Packet
from repro.routing.base import Route, RoutingProtocol
from repro.routing.messages import (
    RREQ_FLAG_DEST_ONLY,
    RREQ_FLAG_UNKNOWN_SEQ,
    Extension,
    Rerr,
    Rrep,
    Rreq,
    decode_aodv,
    encode_aodv,
)

#: Reserved anycast address used by SIPHoc to address "whoever offers the
#: service" — RREQs for it flood the network and any node may answer.
SLP_ANYCAST = "192.168.255.254"

AODV_PORT = 654


@dataclass
class _PendingDiscovery:
    retries: int = 0
    buffered: list[Packet] = field(default_factory=list)
    timer: object | None = None
    started_at: float = 0.0


class Aodv(RoutingProtocol):
    """An AODV routing daemon bound to UDP port 654 on its node."""

    name = "aodv"
    port = AODV_PORT

    # Protocol constants (RFC 3561 defaults, lightly adapted to simulation).
    ACTIVE_ROUTE_TIMEOUT = 6.0
    MY_ROUTE_TIMEOUT = 12.0
    NET_DIAMETER = 35
    NODE_TRAVERSAL_TIME = 0.04
    NET_TRAVERSAL_TIME = 2 * NODE_TRAVERSAL_TIME * NET_DIAMETER
    PATH_DISCOVERY_TIME = 2 * NET_TRAVERSAL_TIME
    RREQ_RETRIES = 2
    HELLO_INTERVAL = 1.0
    ALLOWED_HELLO_LOSS = 2
    MAX_BUFFERED_PACKETS = 32

    def __init__(
        self,
        node: Node,
        use_hello: bool = False,
        net_diameter: int | None = None,
    ) -> None:
        super().__init__(node)
        self.use_hello = use_hello
        # RFC 3561 sizes the RREQ retry timeout for the *configured* network
        # diameter. The class default (35 hops -> 2.8 s) is absurdly long for
        # a small testbed: one lost RREQ turns a 50 ms fade into a multi-
        # second blackout. Scenarios that know their diameter pass it here.
        diameter = net_diameter if net_diameter is not None else self.NET_DIAMETER
        self.net_traversal_time = 2 * self.NODE_TRAVERSAL_TIME * diameter
        self.seq_no = 1
        self._rreq_id = 0
        self._rreq_seen: dict[tuple[str, int], float] = {}
        self._pending: dict[str, _PendingDiscovery] = {}
        self._retried_uids: set[int] = set()
        self._hello_task = None

    @property
    def pending_discovery_count(self) -> int:
        """Route discoveries in flight (metrics gauge)."""
        return len(self._pending)

    # -- lifecycle -------------------------------------------------------------
    def _on_start(self) -> None:
        if self.use_hello:
            self._hello_task = self.sim.schedule_periodic(
                self.HELLO_INTERVAL, self._send_hello, jitter=0.1
            )

    def _on_stop(self) -> None:
        if self._hello_task is not None:
            self._hello_task.stop()
            self._hello_task = None
        # A stopped daemon must not keep re-flooding RREQs: cancel every
        # pending discovery's retry timer and drop its buffered packets
        # (a restarted node gets a brand-new daemon on the same port).
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()

    # -- IP-layer interface -------------------------------------------------------
    def dispatch(self, packet: Packet) -> None:
        if not self.started:
            return
        route = self.table.lookup(packet.dst, self.sim.now)
        if route is not None:
            self._refresh(route)
            self.node.link_send(route.next_hop, packet, self._on_link_failure)
            return
        tracer = self.sim.tracer
        if tracer is not None:
            stale = self.table.get(packet.dst)
            if stale is not None:
                tracer.emit(
                    "aodv.route_expired", self.node.ip, dest=packet.dst,
                    valid=stale.valid,
                )
        self._buffer_packet(packet)

    def _buffer_packet(self, packet: Packet) -> None:
        pending = self._pending.get(packet.dst)
        if pending is None:
            pending = _PendingDiscovery(started_at=self.sim.now)
            self._pending[packet.dst] = pending
            self._send_rreq(packet.dst, retry=0)
        if len(pending.buffered) >= self.MAX_BUFFERED_PACKETS:
            pending.buffered.pop(0)
            self.node.stats.increment("aodv.buffer_overflow")
        pending.buffered.append(packet)

    # -- route discovery -----------------------------------------------------------
    def _send_rreq(self, dest: str, retry: int) -> None:
        self.seq_no += 1
        self._rreq_id += 1
        known = self.table.get(dest)
        flags = 0
        dest_seq = 0
        if known is not None:
            dest_seq = known.seq_no
        else:
            flags |= RREQ_FLAG_UNKNOWN_SEQ
        rreq = Rreq(
            rreq_id=self._rreq_id,
            dest_ip=dest,
            dest_seq=dest_seq,
            orig_ip=self.node.ip,
            orig_seq=self.seq_no,
            hop_count=0,
            flags=flags,
        )
        self._mark_seen(self.node.ip, self._rreq_id)
        self.node.stats.increment("aodv.rreq_originated")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "aodv.rreq", self.node.ip, dest=dest, rreq_id=self._rreq_id,
                retry=retry,
            )
        self.send_control(BROADCAST, encode_aodv(rreq), ttl=self.NET_DIAMETER)
        timeout = self.net_traversal_time * (2**retry)
        pending = self._pending.get(dest)
        if pending is not None:
            pending.retries = retry
            pending.timer = self.sim.schedule(timeout, self._discovery_timeout, dest, retry)

    def _discovery_timeout(self, dest: str, retry: int) -> None:
        if not self.started:
            return
        pending = self._pending.get(dest)
        if pending is None or pending.retries != retry:
            return
        if retry < self.RREQ_RETRIES:
            self._send_rreq(dest, retry + 1)
            return
        del self._pending[dest]
        self.node.stats.increment("aodv.discovery_failed")
        self.node.stats.increment("ip.no_route", len(pending.buffered))
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "aodv.discovery_failed", self.node.ip, dest=dest,
                dropped=len(pending.buffered),
            )

    def discover(self, dest: str) -> None:
        """Proactively start a route discovery without sending data."""
        if self.table.lookup(dest, self.sim.now) is not None:
            return
        if dest not in self._pending:
            self._pending[dest] = _PendingDiscovery(started_at=self.sim.now)
            self._send_rreq(dest, retry=0)

    def next_rreq_id(self, base: int = 1 << 24) -> int:
        """Allocate an RREQ id from the plugin range (disjoint from daemon ids)."""
        self._rreq_id = max(self._rreq_id + 1, base)
        return self._rreq_id

    # -- control-plane receive ---------------------------------------------------------
    def _on_datagram(self, data: bytes, src_ip: str, sport: int) -> None:
        if not self.started:
            return
        message, extensions = decode_aodv(data)
        if isinstance(message, Rreq):
            self._handle_rreq(message, src_ip, extensions)
        elif isinstance(message, Rrep):
            self._handle_rrep(message, src_ip, extensions)
        elif isinstance(message, Rerr):
            self._handle_rerr(message, src_ip)

    def _handle_rreq(self, rreq: Rreq, src_ip: str, extensions: list[Extension]) -> None:
        self._update_neighbor(src_ip)
        if rreq.orig_ip == self.node.ip:
            return
        key = (rreq.orig_ip, rreq.rreq_id)
        now = self.sim.now
        self._gc_seen(now)
        if key in self._rreq_seen:
            return
        self._mark_seen(*key)
        hop_count = rreq.hop_count + 1
        self._update_route(
            rreq.orig_ip, src_ip, hop_count, rreq.orig_seq, self.ACTIVE_ROUTE_TIMEOUT
        )
        if rreq.dest_ip == self.node.ip:
            self.seq_no = max(self.seq_no, rreq.dest_seq)
            self._originate_rrep(rreq, hop_count_to_dest=0, dest_seq=self.seq_no)
            return
        if not rreq.dest_only:
            route = self.table.lookup(rreq.dest_ip, now)
            if (
                route is not None
                and not rreq.unknown_seq
                and route.seq_no >= rreq.dest_seq
            ):
                self._originate_rrep(
                    rreq, hop_count_to_dest=route.hop_count, dest_seq=route.seq_no
                )
                return
        if hop_count >= self.NET_DIAMETER:
            return
        forwarded = Rreq(
            rreq_id=rreq.rreq_id,
            dest_ip=rreq.dest_ip,
            dest_seq=rreq.dest_seq,
            orig_ip=rreq.orig_ip,
            orig_seq=rreq.orig_seq,
            hop_count=hop_count,
            flags=rreq.flags,
        )
        self.node.stats.increment("aodv.rreq_forwarded")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "aodv.rreq_forward", self.node.ip, dest=rreq.dest_ip,
                orig=rreq.orig_ip, rreq_id=rreq.rreq_id, hop_count=hop_count,
            )
        self.send_control(
            BROADCAST, encode_aodv(forwarded, extensions), ttl=self.NET_DIAMETER
        )

    def _originate_rrep(self, rreq: Rreq, hop_count_to_dest: int, dest_seq: int) -> None:
        reverse = self.table.lookup(rreq.orig_ip, self.sim.now)
        if reverse is None:
            return
        rrep = Rrep(
            dest_ip=rreq.dest_ip,
            dest_seq=dest_seq,
            orig_ip=rreq.orig_ip,
            lifetime_ms=int(self.MY_ROUTE_TIMEOUT * 1000),
            hop_count=hop_count_to_dest,
        )
        self.node.stats.increment("aodv.rrep_originated")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "aodv.rrep", self.node.ip, dest=rreq.dest_ip, orig=rreq.orig_ip,
                hop_count=hop_count_to_dest, dest_seq=dest_seq,
            )
        self.send_control(reverse.next_hop, encode_aodv(rrep), ttl=self.NET_DIAMETER)

    def _handle_rrep(self, rrep: Rrep, src_ip: str, extensions: list[Extension]) -> None:
        if rrep.is_hello():
            self._update_neighbor(
                src_ip,
                lifetime=(1 + self.ALLOWED_HELLO_LOSS) * self.HELLO_INTERVAL,
                seq_no=rrep.dest_seq,
            )
            return
        self._update_neighbor(src_ip)
        hop_count = rrep.hop_count + 1
        lifetime = rrep.lifetime_ms / 1000.0
        self._update_route(rrep.dest_ip, src_ip, hop_count, rrep.dest_seq, lifetime)
        if rrep.orig_ip == self.node.ip:
            self._discovery_complete(rrep.dest_ip)
            return
        reverse = self.table.lookup(rrep.orig_ip, self.sim.now)
        if reverse is None:
            self.node.stats.increment("aodv.rrep_no_reverse_route")
            return
        forward = self.table.get(rrep.dest_ip)
        if forward is not None:
            forward.precursors.add(reverse.next_hop)
        forwarded = Rrep(
            dest_ip=rrep.dest_ip,
            dest_seq=rrep.dest_seq,
            orig_ip=rrep.orig_ip,
            lifetime_ms=rrep.lifetime_ms,
            hop_count=hop_count,
        )
        self.node.stats.increment("aodv.rrep_forwarded")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "aodv.rrep_forward", self.node.ip, dest=rrep.dest_ip,
                orig=rrep.orig_ip, hop_count=hop_count,
            )
        self.send_control(
            reverse.next_hop, encode_aodv(forwarded, extensions), ttl=self.NET_DIAMETER
        )

    def _discovery_complete(self, dest: str) -> None:
        pending = self._pending.pop(dest, None)
        if pending is None:
            return
        self.node.stats.sample("aodv.discovery_latency", self.sim.now - pending.started_at)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "aodv.discovery_complete", self.node.ip, dest=dest,
                latency=self.sim.now - pending.started_at,
                flushed=len(pending.buffered),
            )
        for packet in pending.buffered:
            self.dispatch(packet)

    def _handle_rerr(self, rerr: Rerr, src_ip: str) -> None:
        propagate: list[tuple[str, int]] = []
        for dest, seq in rerr.unreachable:
            route = self.table.get(dest)
            if route is None or not route.valid or route.next_hop != src_ip:
                continue
            route.valid = False
            route.seq_no = max(route.seq_no, seq)
            propagate.append((dest, route.seq_no))
        if propagate:
            self.node.stats.increment("aodv.rerr_forwarded")
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    "aodv.rerr", self.node.ip, origin=False,
                    unreachable=sorted(dest for dest, _ in propagate),
                )
            self.send_control(BROADCAST, encode_aodv(Rerr(unreachable=propagate)), ttl=1)

    # -- link failure ---------------------------------------------------------------
    def _on_link_failure(self, next_hop: str, packet: Packet) -> None:
        if not self.started:
            return  # TX-failure feedback arriving after the daemon stopped
        now = self.sim.now
        broken = self.table.routes_via(next_hop, now)
        unreachable = []
        for route in broken:
            route.valid = False
            route.seq_no += 1  # destinations become "newer unreachable"
            unreachable.append((route.destination, route.seq_no))
        if unreachable:
            self.node.stats.increment("aodv.rerr_originated")
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    "aodv.rerr", self.node.ip, origin=True, failed_hop=next_hop,
                    unreachable=sorted(dest for dest, _ in unreachable),
                )
            self.send_control(BROADCAST, encode_aodv(Rerr(unreachable=unreachable)), ttl=1)
        if packet.dport == self.port:
            return  # do not re-discover for lost control traffic
        if packet.uid in self._retried_uids:
            self.node.stats.increment("aodv.packet_lost")
            return
        if len(self._retried_uids) > 4096:
            self._retried_uids.clear()
        self._retried_uids.add(packet.uid)
        self.dispatch(packet)

    # -- hello beacons ----------------------------------------------------------------
    def _send_hello(self) -> None:
        hello = Rrep(
            dest_ip=self.node.ip,
            dest_seq=self.seq_no,
            orig_ip=self.node.ip,
            lifetime_ms=int((1 + self.ALLOWED_HELLO_LOSS) * self.HELLO_INTERVAL * 1000),
            hop_count=0,
        )
        self.send_control(BROADCAST, encode_aodv(hello), ttl=1)

    # -- route table helpers ----------------------------------------------------------
    def _update_neighbor(
        self, neighbor_ip: str, lifetime: float | None = None, seq_no: int | None = None
    ) -> None:
        self._update_route(
            neighbor_ip,
            neighbor_ip,
            hop_count=1,
            seq_no=seq_no if seq_no is not None else 0,
            lifetime=lifetime if lifetime is not None else self.ACTIVE_ROUTE_TIMEOUT,
        )

    def _update_route(
        self, dest: str, next_hop: str, hop_count: int, seq_no: int, lifetime: float
    ) -> None:
        if dest == self.node.ip:
            return
        now = self.sim.now
        existing = self.table.get(dest)
        if existing is not None and existing.is_usable(now):
            newer = seq_no > existing.seq_no
            same_but_shorter = seq_no == existing.seq_no and hop_count < existing.hop_count
            if not (newer or same_but_shorter or existing.seq_no == 0):
                # Keep the fresher/shorter route; just extend its life.
                existing.expires_at = max(existing.expires_at, now + lifetime)
                return
        precursors = existing.precursors if existing is not None else set()
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "aodv.route_update", self.node.ip, dest=dest, next_hop=next_hop,
                hop_count=hop_count, seq_no=seq_no,
            )
        self.table.upsert(
            Route(
                destination=dest,
                next_hop=next_hop,
                hop_count=hop_count,
                seq_no=seq_no,
                expires_at=now + lifetime,
                valid=True,
                precursors=precursors,
            )
        )

    def _refresh(self, route: Route) -> None:
        route.expires_at = max(route.expires_at, self.sim.now + self.ACTIVE_ROUTE_TIMEOUT)

    # -- duplicate suppression -----------------------------------------------------------
    def _mark_seen(self, orig_ip: str, rreq_id: int) -> None:
        self._rreq_seen[(orig_ip, rreq_id)] = self.sim.now + self.PATH_DISCOVERY_TIME

    def _gc_seen(self, now: float) -> None:
        if len(self._rreq_seen) > 512:
            self._rreq_seen = {
                key: expiry for key, expiry in self._rreq_seen.items() if expiry > now
            }
