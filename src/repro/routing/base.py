"""Routing protocol base classes and the route table.

Both AODV and OLSR implement the :class:`RoutingProtocol` interface, which
the node's IP layer calls for every MANET-destined packet. The interface is
also what the SIPHoc routing-handler plugins introspect for hop counts and
convergence measurements.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

from repro.netsim.node import Node
from repro.netsim.packet import Packet


@dataclass
class Route:
    """One route-table entry."""

    destination: str
    next_hop: str
    hop_count: int
    seq_no: int = 0
    expires_at: float = math.inf
    valid: bool = True
    precursors: set[str] = field(default_factory=set)

    def is_usable(self, now: float) -> bool:
        return self.valid and now < self.expires_at


class RouteTable:
    """Destination-indexed route entries with expiry."""

    def __init__(self) -> None:
        self._routes: dict[str, Route] = {}

    def get(self, destination: str) -> Route | None:
        """The entry for ``destination`` regardless of validity, or None."""
        return self._routes.get(destination)

    def lookup(self, destination: str, now: float) -> Route | None:
        """A *usable* route to ``destination``, or None."""
        route = self._routes.get(destination)
        if route is not None and route.is_usable(now):
            return route
        return None

    def upsert(self, route: Route) -> Route:
        self._routes[route.destination] = route
        return route

    def invalidate(self, destination: str) -> Route | None:
        route = self._routes.get(destination)
        if route is not None:
            route.valid = False
        return route

    def remove(self, destination: str) -> None:
        self._routes.pop(destination, None)

    def clear(self) -> None:
        self._routes.clear()

    def destinations(self) -> list[str]:
        return list(self._routes)

    def usable_routes(self, now: float) -> list[Route]:
        return [route for route in self._routes.values() if route.is_usable(now)]

    def routes_via(self, next_hop: str, now: float) -> list[Route]:
        return [
            route
            for route in self._routes.values()
            if route.next_hop == next_hop and route.is_usable(now)
        ]

    def __len__(self) -> int:
        return len(self._routes)


class RoutingProtocol(abc.ABC):
    """Common machinery for MANET routing daemons.

    Subclasses bind their IANA UDP port on construction and implement
    :meth:`dispatch` (called by the node's IP layer) plus protocol timers.
    """

    name: str = "routing"
    port: int = 0

    def __init__(self, node: Node) -> None:
        self.node = node
        self.sim = node.sim
        self.table = RouteTable()
        self._socket = node.bind(self.port, self._on_datagram)
        self._started = False
        node.set_router(self)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "RoutingProtocol":
        if not self._started:
            self._started = True
            self._on_start()
        return self

    def stop(self) -> None:
        """Stop timers and release the control socket (terminal operation)."""
        if self._started:
            self._started = False
            self._on_stop()
        self._socket.close()

    @property
    def started(self) -> bool:
        return self._started

    def _on_start(self) -> None:
        """Subclass hook: start periodic timers."""

    def _on_stop(self) -> None:
        """Subclass hook: stop periodic timers."""

    # -- interface used by the IP layer and by SIPHoc ------------------------
    @abc.abstractmethod
    def dispatch(self, packet: Packet) -> None:
        """Deliver, buffer, or drop a unicast packet for a MANET destination."""

    @abc.abstractmethod
    def _on_datagram(self, data: bytes, src_ip: str, sport: int) -> None:
        """Handle a received routing-control datagram."""

    @property
    def route_count(self) -> int:
        """Route-table entries, including expired-but-unpurged (metrics gauge)."""
        return len(self.table)

    def route_to(self, destination: str) -> Route | None:
        """A currently usable route, or None (does not trigger discovery)."""
        return self.table.lookup(destination, self.sim.now)

    def hop_count_to(self, destination: str) -> int | None:
        route = self.route_to(destination)
        return route.hop_count if route is not None else None

    def send_control(self, dst_ip: str, data: bytes, ttl: int = 1) -> None:
        """Transmit a routing-control datagram (runs through netfilter hooks)."""
        self.node.send_udp(dst_ip, self.port, self.port, data, ttl=ttl)
