"""Wire formats for AODV (RFC 3561) and OLSR (RFC 3626) control messages.

Both codecs support trailing *extensions* — the mechanism SIPHoc uses to
piggyback SLP payloads onto routing traffic:

* AODV datagrams carry one base message followed by TLV extension blocks
  (``ext_type:u8, length:u16, body``).
* OLSR packets are containers of messages; piggybacked payloads travel as
  additional messages with a type >= 128, which compliant daemons flood via
  the default forwarding algorithm without understanding them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CodecError
from repro.routing.wire import Reader, Writer

# -- shared extension container ------------------------------------------------


@dataclass(frozen=True)
class Extension:
    """An opaque piggybacked payload attached to a routing message."""

    ext_type: int
    body: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.ext_type <= 255:
            raise CodecError(f"extension type out of range: {self.ext_type}")


def encode_extensions(extensions: tuple[Extension, ...] | list[Extension]) -> bytes:
    writer = Writer()
    for ext in extensions:
        writer.u8(ext.ext_type).u16(len(ext.body)).raw(ext.body)
    return writer.getvalue()


def decode_extensions(reader: Reader) -> list[Extension]:
    extensions = []
    while reader.remaining > 0:
        ext_type = reader.u8()
        length = reader.u16()
        extensions.append(Extension(ext_type, reader.raw(length)))
    return extensions


# -- AODV ------------------------------------------------------------------------

AODV_RREQ = 1
AODV_RREP = 2
AODV_RERR = 3

RREQ_FLAG_DEST_ONLY = 0x01
RREQ_FLAG_UNKNOWN_SEQ = 0x02


@dataclass
class Rreq:
    """Route Request: flooded to discover a route to ``dest_ip``."""

    rreq_id: int
    dest_ip: str
    dest_seq: int
    orig_ip: str
    orig_seq: int
    hop_count: int = 0
    flags: int = 0

    @property
    def dest_only(self) -> bool:
        return bool(self.flags & RREQ_FLAG_DEST_ONLY)

    @property
    def unknown_seq(self) -> bool:
        return bool(self.flags & RREQ_FLAG_UNKNOWN_SEQ)


@dataclass
class Rrep:
    """Route Reply: unicast back along the reverse route to ``orig_ip``."""

    dest_ip: str
    dest_seq: int
    orig_ip: str
    lifetime_ms: int
    hop_count: int = 0

    def is_hello(self) -> bool:
        """AODV hello messages are RREPs with dest == orig and hop count 0."""
        return self.dest_ip == self.orig_ip and self.hop_count == 0


@dataclass
class Rerr:
    """Route Error: lists destinations that became unreachable."""

    unreachable: list[tuple[str, int]] = field(default_factory=list)


AodvMessage = Rreq | Rrep | Rerr


def encode_aodv(
    message: AodvMessage, extensions: tuple[Extension, ...] | list[Extension] = ()
) -> bytes:
    """Serialize one AODV message plus optional piggybacked extensions."""
    writer = Writer()
    if isinstance(message, Rreq):
        writer.u8(AODV_RREQ).u8(message.flags).u8(0).u8(message.hop_count)
        writer.u32(message.rreq_id)
        writer.ip(message.dest_ip).u32(message.dest_seq)
        writer.ip(message.orig_ip).u32(message.orig_seq)
    elif isinstance(message, Rrep):
        writer.u8(AODV_RREP).u8(0).u8(0).u8(message.hop_count)
        writer.ip(message.dest_ip).u32(message.dest_seq)
        writer.ip(message.orig_ip).u32(message.lifetime_ms)
    elif isinstance(message, Rerr):
        if len(message.unreachable) > 255:
            raise CodecError("RERR cannot list more than 255 destinations")
        writer.u8(AODV_RERR).u8(0).u8(0).u8(len(message.unreachable))
        for ip, seq in message.unreachable:
            writer.ip(ip).u32(seq)
    else:  # pragma: no cover - defensive
        raise CodecError(f"unknown AODV message {message!r}")
    writer.raw(encode_extensions(extensions))
    return writer.getvalue()


def decode_aodv(data: bytes) -> tuple[AodvMessage, list[Extension]]:
    """Parse an AODV datagram into its base message and extensions."""
    reader = Reader(data)
    msg_type = reader.u8()
    message: AodvMessage
    if msg_type == AODV_RREQ:
        flags = reader.u8()
        reader.u8()  # reserved
        hop_count = reader.u8()
        rreq_id = reader.u32()
        dest_ip, dest_seq = reader.ip(), reader.u32()
        orig_ip, orig_seq = reader.ip(), reader.u32()
        message = Rreq(
            rreq_id=rreq_id,
            dest_ip=dest_ip,
            dest_seq=dest_seq,
            orig_ip=orig_ip,
            orig_seq=orig_seq,
            hop_count=hop_count,
            flags=flags,
        )
    elif msg_type == AODV_RREP:
        reader.u8()  # flags
        reader.u8()  # prefix size
        hop_count = reader.u8()
        dest_ip, dest_seq = reader.ip(), reader.u32()
        orig_ip, lifetime_ms = reader.ip(), reader.u32()
        message = Rrep(
            dest_ip=dest_ip,
            dest_seq=dest_seq,
            orig_ip=orig_ip,
            lifetime_ms=lifetime_ms,
            hop_count=hop_count,
        )
    elif msg_type == AODV_RERR:
        reader.u8()  # flags
        reader.u8()  # reserved
        count = reader.u8()
        unreachable = [(reader.ip(), reader.u32()) for _ in range(count)]
        message = Rerr(unreachable=unreachable)
    else:
        raise CodecError(f"unknown AODV message type {msg_type}")
    return message, decode_extensions(reader)


# -- OLSR --------------------------------------------------------------------------

OLSR_HELLO = 1
OLSR_TC = 2
OLSR_SLP = 130  # SIPHoc piggyback message (unknown to plain OLSR, flooded anyway)

LINK_ASYM = 1
LINK_SYM = 2
LINK_MPR = 3

_OLSR_MSG_HEADER = 12


@dataclass
class OlsrMessage:
    """Generic OLSR message envelope; ``body`` stays opaque at this layer."""

    msg_type: int
    orig_ip: str
    seq: int
    body: bytes
    vtime: float = 6.0
    ttl: int = 255
    hops: int = 0

    def key(self) -> tuple[str, int]:
        """Duplicate-suppression key used by the flooding algorithm."""
        return (self.orig_ip, self.seq)


@dataclass
class HelloBody:
    """OLSR HELLO: the sender's view of its links, by link code."""

    links: dict[int, list[str]] = field(default_factory=dict)
    willingness: int = 3

    def all_neighbors(self) -> list[str]:
        return [ip for ips in self.links.values() for ip in ips]


@dataclass
class TcBody:
    """OLSR Topology Control: advertised (MPR-selector) neighbors."""

    ansn: int
    neighbors: list[str] = field(default_factory=list)


def _encode_vtime(seconds: float) -> int:
    return max(0, min(255, int(seconds * 4)))


def _decode_vtime(raw: int) -> float:
    return raw / 4.0


def encode_hello_body(body: HelloBody) -> bytes:
    writer = Writer()
    writer.u8(0).u8(body.willingness)
    for link_code in sorted(body.links):
        ips = body.links[link_code]
        writer.u8(link_code).u8(0).u16(len(ips))
        for ip in ips:
            writer.ip(ip)
    return writer.getvalue()


def decode_hello_body(data: bytes) -> HelloBody:
    reader = Reader(data)
    reader.u8()  # htime (unused)
    willingness = reader.u8()
    links: dict[int, list[str]] = {}
    while reader.remaining > 0:
        link_code = reader.u8()
        reader.u8()  # reserved
        count = reader.u16()
        links.setdefault(link_code, []).extend(reader.ip() for _ in range(count))
    return HelloBody(links=links, willingness=willingness)


def encode_tc_body(body: TcBody) -> bytes:
    writer = Writer()
    writer.u16(body.ansn).u16(0)
    for ip in body.neighbors:
        writer.ip(ip)
    return writer.getvalue()


def decode_tc_body(data: bytes) -> TcBody:
    reader = Reader(data)
    ansn = reader.u16()
    reader.u16()  # reserved
    neighbors = []
    while reader.remaining >= 4:
        neighbors.append(reader.ip())
    return TcBody(ansn=ansn, neighbors=neighbors)


def encode_olsr_packet(packet_seq: int, messages: list[OlsrMessage]) -> bytes:
    """Serialize an OLSR packet (header + concatenated messages)."""
    writer = Writer()
    body = Writer()
    for message in messages:
        size = _OLSR_MSG_HEADER + len(message.body)
        body.u8(message.msg_type).u8(_encode_vtime(message.vtime)).u16(size)
        body.ip(message.orig_ip)
        body.u8(message.ttl).u8(message.hops).u16(message.seq)
        body.raw(message.body)
    payload = body.getvalue()
    writer.u16(4 + len(payload)).u16(packet_seq).raw(payload)
    return writer.getvalue()


def decode_olsr_packet(data: bytes) -> tuple[int, list[OlsrMessage]]:
    """Parse an OLSR packet into its sequence number and messages."""
    reader = Reader(data)
    length = reader.u16()
    if length != len(data):
        raise CodecError(f"OLSR packet length mismatch: header says {length}, got {len(data)}")
    packet_seq = reader.u16()
    messages = []
    while reader.remaining > 0:
        msg_type = reader.u8()
        vtime = _decode_vtime(reader.u8())
        size = reader.u16()
        orig_ip = reader.ip()
        ttl = reader.u8()
        hops = reader.u8()
        seq = reader.u16()
        body_len = size - _OLSR_MSG_HEADER
        if body_len < 0:
            raise CodecError(f"OLSR message size too small: {size}")
        body = reader.raw(body_len)
        messages.append(
            OlsrMessage(
                msg_type=msg_type,
                orig_ip=orig_ip,
                seq=seq,
                body=body,
                vtime=vtime,
                ttl=ttl,
                hops=hops,
            )
        )
    return packet_seq, messages
