"""MANET routing protocols: AODV (RFC 3561) and OLSR (RFC 3626).

Both daemons bind their IANA UDP port on a simulated node, act as the
node's IP-layer router for MANET destinations, and exchange byte-accurate
control messages that the SIPHoc handler plugins can piggyback onto.
"""

from repro.routing.aodv import SLP_ANYCAST, Aodv
from repro.routing.base import Route, RouteTable, RoutingProtocol
from repro.routing.messages import (
    AODV_RERR,
    AODV_RREP,
    AODV_RREQ,
    LINK_MPR,
    LINK_SYM,
    OLSR_HELLO,
    OLSR_SLP,
    OLSR_TC,
    Extension,
    HelloBody,
    OlsrMessage,
    Rerr,
    Rrep,
    Rreq,
    TcBody,
    decode_aodv,
    decode_hello_body,
    decode_olsr_packet,
    decode_tc_body,
    encode_aodv,
    encode_hello_body,
    encode_olsr_packet,
    encode_tc_body,
)
from repro.routing.olsr import Olsr

__all__ = [
    "AODV_RERR",
    "AODV_RREP",
    "AODV_RREQ",
    "Aodv",
    "Extension",
    "HelloBody",
    "LINK_MPR",
    "LINK_SYM",
    "OLSR_HELLO",
    "OLSR_SLP",
    "OLSR_TC",
    "Olsr",
    "OlsrMessage",
    "Rerr",
    "Route",
    "RouteTable",
    "RoutingProtocol",
    "Rrep",
    "Rreq",
    "SLP_ANYCAST",
    "TcBody",
    "decode_aodv",
    "decode_hello_body",
    "decode_olsr_packet",
    "decode_tc_body",
    "encode_aodv",
    "encode_hello_body",
    "encode_olsr_packet",
    "encode_tc_body",
]
