"""Common interface for SIP user-location schemes in MANETs.

The paper's related work section describes three alternative approaches to
decentralized SIP session establishment; each is implemented here behind
one interface so the benchmarks can compare them head-to-head with
SIPHoc's MANET SLP on identical workloads:

* broadcast REGISTER flooding (Leggio et al. [12])
* proactive HELLO mapping tables (Pico-SIP, O'Doherty [13])
* standard multicast SLP lookups ([7])
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

from repro.netsim.node import Node


@dataclass(frozen=True)
class UserBinding:
    """A resolved SIP user -> endpoint mapping."""

    aor: str
    host: str
    port: int


ResolveCallback = Callable[[UserBinding | None], None]


class DiscoveryBackend(abc.ABC):
    """A user-location service running on one MANET node."""

    name = "abstract"

    def __init__(self, node: Node) -> None:
        self.node = node
        self.sim = node.sim

    @abc.abstractmethod
    def start(self) -> "DiscoveryBackend":
        """Start timers/sockets."""

    @abc.abstractmethod
    def stop(self) -> None:
        """Stop timers/sockets."""

    @abc.abstractmethod
    def register_user(self, aor: str, host: str, port: int) -> None:
        """Announce that ``aor`` is reachable at ``host:port``."""

    @abc.abstractmethod
    def resolve(self, aor: str, callback: ResolveCallback, timeout: float = 2.0) -> None:
        """Resolve ``aor``; calls ``callback`` with a binding or None."""
