"""Related-work baselines for decentralized SIP user location in MANETs.

Implements the alternatives the paper's related-work section discusses,
behind one :class:`DiscoveryBackend` interface, so the benchmarks can
compare control overhead and lookup latency against SIPHoc's MANET SLP.
"""

from repro.baselines.base import DiscoveryBackend, ResolveCallback, UserBinding
from repro.baselines.flooding_sip import FLOODING_PORT, FloodingSipBackend
from repro.baselines.manetslp_backend import ManetSlpBackend
from repro.baselines.multicast_slp import MulticastSlpBackend
from repro.baselines.proactive_hello import HELLO_PORT, ProactiveHelloBackend

__all__ = [
    "DiscoveryBackend",
    "FLOODING_PORT",
    "FloodingSipBackend",
    "HELLO_PORT",
    "ManetSlpBackend",
    "MulticastSlpBackend",
    "ProactiveHelloBackend",
    "ResolveCallback",
    "UserBinding",
]
