"""Baseline: broadcast REGISTER flooding (Leggio et al. [12]).

Every node periodically floods a real SIP REGISTER message network-wide at
the application layer. All nodes maintain the full mapping table, so
lookups are local — but the registration traffic grows with (nodes x
refresh rate x network size), and the scheme is *SIP-incompatible*: stock
clients do not broadcast REGISTERs, which is exactly the criticism the
paper levels at this approach.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import DiscoveryBackend, ResolveCallback, UserBinding
from repro.errors import SipParseError
from repro.netsim.node import Node
from repro.netsim.packet import BROADCAST
from repro.sip.message import Headers, SipRequest, parse_message
from repro.sip.uri import NameAddr, SipUri

FLOODING_PORT = 5065


@dataclass
class _FloodEntry:
    binding: UserBinding
    expires_at: float


class FloodingSipBackend(DiscoveryBackend):
    """REGISTER-flooding user location."""

    name = "flooding-register"
    REFRESH_INTERVAL = 10.0
    BINDING_LIFETIME = 30.0
    FLOOD_HOPS = 8

    def __init__(self, node: Node, refresh_interval: float | None = None) -> None:
        super().__init__(node)
        if refresh_interval is not None:
            self.REFRESH_INTERVAL = refresh_interval
        self._socket = node.bind(FLOODING_PORT, self._on_datagram)
        self._local: dict[str, UserBinding] = {}
        self._table: dict[str, _FloodEntry] = {}
        self._seen: dict[str, float] = {}
        self._task = None
        self._register_seq = 0

    def start(self) -> "FloodingSipBackend":
        if self._task is None:
            self._task = self.sim.schedule_periodic(
                self.REFRESH_INTERVAL, self._broadcast_all, jitter=0.2
            )
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None
        self._socket.close()

    # -- API ------------------------------------------------------------------
    def register_user(self, aor: str, host: str, port: int) -> None:
        binding = UserBinding(aor=aor, host=host, port=port)
        self._local[aor] = binding
        self._flood_register(binding)

    def resolve(self, aor: str, callback: ResolveCallback, timeout: float = 2.0) -> None:
        binding = self._lookup(aor)
        if binding is not None:
            self.sim.schedule(0.0, callback, binding)
            return
        # No query mechanism exists in this scheme: wait out one refresh.
        self.sim.schedule(timeout, lambda: callback(self._lookup(aor)))

    def _lookup(self, aor: str) -> UserBinding | None:
        local = self._local.get(aor)
        if local is not None:
            return local
        entry = self._table.get(aor)
        if entry is not None and entry.expires_at > self.sim.now:
            return entry.binding
        return None

    def table_size(self) -> int:
        now = self.sim.now
        return len(self._local) + sum(
            1 for entry in self._table.values() if entry.expires_at > now
        )

    # -- flooding ------------------------------------------------------------------
    def _broadcast_all(self) -> None:
        for binding in self._local.values():
            self._flood_register(binding)

    def _flood_register(self, binding: UserBinding) -> None:
        self._register_seq += 1
        aor_uri = SipUri.parse(binding.aor)
        headers = Headers()
        identity = NameAddr(uri=aor_uri)
        headers.add("Via", f"SIP/2.0/UDP {self.node.ip}:{FLOODING_PORT};branch=z9hG4bKfl{self._register_seq}")
        headers.add("From", str(identity))
        headers.add("To", str(identity))
        headers.add("Call-ID", f"flood-{self.node.ip}-{self._register_seq}")
        headers.add("CSeq", f"{self._register_seq} REGISTER")
        headers.add("Max-Forwards", str(self.FLOOD_HOPS))
        headers.add(
            "Contact",
            f"<{SipUri(user=aor_uri.user, host=binding.host, port=binding.port)}>",
        )
        headers.add("Expires", str(int(self.BINDING_LIFETIME)))
        request = SipRequest("REGISTER", SipUri(user=None, host=aor_uri.host), headers=headers)
        self.node.stats.increment("flooding.registers_sent")
        self._socket.send(BROADCAST, FLOODING_PORT, request.serialize(), ttl=self.FLOOD_HOPS)

    def _on_datagram(self, data: bytes, src_ip: str, sport: int) -> None:
        try:
            message = parse_message(data)
        except SipParseError:
            return
        if not isinstance(message, SipRequest) or message.method != "REGISTER":
            return
        call_id = message.call_id or ""
        now = self.sim.now
        if self._seen.get(call_id, 0.0) > now:
            return
        self._seen[call_id] = now + 60.0
        if len(self._seen) > 4096:
            self._seen = {k: v for k, v in self._seen.items() if v > now}
        to = message.to
        contact = message.contact
        if to is None or contact is None:
            return
        aor = to.uri.address_of_record
        if aor not in self._local:
            self._table[aor] = _FloodEntry(
                binding=UserBinding(
                    aor=aor,
                    host=contact.uri.host,
                    port=contact.uri.effective_port(),
                ),
                expires_at=now + self.BINDING_LIFETIME,
            )
        # Application-layer re-flood (decrementing Max-Forwards).
        raw = message.headers.get("Max-Forwards")
        try:
            remaining = int(raw) if raw is not None else 0
        except ValueError:
            remaining = 0
        if remaining > 1:
            message.headers.set("Max-Forwards", str(remaining - 1))
            self.node.stats.increment("flooding.registers_forwarded")
            self._socket.send(
                BROADCAST, FLOODING_PORT, message.serialize(), ttl=remaining - 1
            )
