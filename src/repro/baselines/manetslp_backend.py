"""The SIPHoc approach behind the common baseline interface.

Wraps :class:`repro.core.manet_slp.ManetSlp` (routing-piggybacked
dissemination + in-band lookups) so the benchmark harness can compare it
against the related-work baselines on identical workloads.
"""

from __future__ import annotations

from repro.baselines.base import DiscoveryBackend, ResolveCallback, UserBinding
from repro.core.handlers import make_handler
from repro.core.manet_slp import ManetSlp, ManetSlpConfig
from repro.netsim.node import Node
from repro.routing.base import RoutingProtocol
from repro.slp.service import SERVICE_SIP_CONTACT, ServiceEntry, ServiceUrl


class ManetSlpBackend(DiscoveryBackend):
    """SIPHoc's MANET SLP as a user-location backend."""

    name = "siphoc-manetslp"

    def __init__(
        self,
        node: Node,
        routing: RoutingProtocol,
        config: ManetSlpConfig | None = None,
    ) -> None:
        super().__init__(node)
        self.routing = routing
        self.slp = ManetSlp(node, make_handler(routing), config)

    def start(self) -> "ManetSlpBackend":
        self.slp.start()
        return self

    def stop(self) -> None:
        self.slp.stop()

    def register_user(self, aor: str, host: str, port: int) -> None:
        self.slp.register(
            ServiceUrl(service_type=SERVICE_SIP_CONTACT, host=host, port=port),
            attributes={"user": aor},
        )

    def resolve(self, aor: str, callback: ResolveCallback, timeout: float = 2.0) -> None:
        def on_results(entries: list[ServiceEntry]) -> None:
            if not entries:
                callback(None)
                return
            entry = entries[0]
            callback(
                UserBinding(aor=aor, host=entry.url.host, port=entry.url.port or 5060)
            )

        self.slp.find_services(
            SERVICE_SIP_CONTACT,
            predicate=f"(user={aor})",
            callback=on_results,
            timeout=timeout,
        )
