"""Baseline: standard multicast SLP lookups ([7] in the paper).

SIP bindings are registered with a plain SLP service agent; every lookup
floods a SrvRqst network-wide (the broadcast emulation of SLP multicast
convergence). Registration is quiet, but *each call setup* pays a full
network flood plus a unicast reply — the inefficiency measured in the
cited ICN'05 study and the reason SIPHoc piggybacks instead.
"""

from __future__ import annotations

from repro.baselines.base import DiscoveryBackend, ResolveCallback, UserBinding
from repro.netsim.node import Node
from repro.slp.agent import SlpAgent
from repro.slp.service import SERVICE_SIP_CONTACT, ServiceEntry, ServiceUrl


class MulticastSlpBackend(DiscoveryBackend):
    """Standard-SLP user location (flooded SrvRqst per lookup)."""

    name = "multicast-slp"

    def __init__(self, node: Node) -> None:
        super().__init__(node)
        self.agent = SlpAgent(node)

    def start(self) -> "MulticastSlpBackend":
        return self

    def stop(self) -> None:
        self.agent.close()

    def register_user(self, aor: str, host: str, port: int) -> None:
        self.agent.register(
            ServiceUrl(service_type=SERVICE_SIP_CONTACT, host=host, port=port),
            attributes={"user": aor},
            lifetime=3600.0,
        )

    def resolve(self, aor: str, callback: ResolveCallback, timeout: float = 2.0) -> None:
        def on_results(entries: list[ServiceEntry]) -> None:
            if not entries:
                callback(None)
                return
            entry = entries[0]
            callback(
                UserBinding(
                    aor=aor, host=entry.url.host, port=entry.url.port or 5060
                )
            )

        self.agent.find_services(
            SERVICE_SIP_CONTACT,
            predicate=f"(user={aor})",
            timeout=timeout,
            callback=on_results,
        )
