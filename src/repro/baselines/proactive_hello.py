"""Baseline: proactive HELLO mapping (Pico-SIP, O'Doherty [13]).

Every node periodically floods a compact HELLO carrying *all* SIP mappings
it knows (its own and learned ones — gossip-style), so the full mapping
table converges everywhere. The paper's criticism: resources are spent
proactively on mappings that may never be used, and the HELLO method is
not SIP-compatible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import DiscoveryBackend, ResolveCallback, UserBinding
from repro.errors import CodecError
from repro.netsim.node import Node
from repro.netsim.packet import BROADCAST
from repro.routing.wire import Reader, Writer

HELLO_PORT = 5066


def _encode_hello(origin: str, seq: int, bindings: list[UserBinding]) -> bytes:
    writer = Writer()
    writer.ip(origin).u16(seq).u8(8)  # ttl field for app-level flooding
    writer.u16(len(bindings))
    for binding in bindings:
        aor = binding.aor.encode("utf-8")
        writer.u16(len(aor)).raw(aor)
        writer.ip(binding.host).u16(binding.port)
    return writer.getvalue()


def _decode_hello(data: bytes) -> tuple[str, int, int, list[UserBinding]]:
    reader = Reader(data)
    origin = reader.ip()
    seq = reader.u16()
    ttl = reader.u8()
    count = reader.u16()
    bindings = []
    for _ in range(count):
        length = reader.u16()
        aor = reader.raw(length).decode("utf-8")
        host = reader.ip()
        port = reader.u16()
        bindings.append(UserBinding(aor=aor, host=host, port=port))
    return origin, seq, ttl, bindings


def _rewrite_ttl(data: bytes, ttl: int) -> bytes:
    return data[:6] + bytes([ttl]) + data[7:]


@dataclass
class _HelloEntry:
    binding: UserBinding
    expires_at: float


class ProactiveHelloBackend(DiscoveryBackend):
    """Pico-SIP style proactive mapping dissemination."""

    name = "proactive-hello"
    HELLO_INTERVAL = 5.0
    BINDING_LIFETIME = 20.0
    FLOOD_HOPS = 8

    def __init__(self, node: Node, hello_interval: float | None = None) -> None:
        super().__init__(node)
        if hello_interval is not None:
            self.HELLO_INTERVAL = hello_interval
        self._socket = node.bind(HELLO_PORT, self._on_datagram)
        self._local: dict[str, UserBinding] = {}
        self._table: dict[str, _HelloEntry] = {}
        self._seen: dict[tuple[str, int], float] = {}
        self._seq = 0
        self._task = None

    def start(self) -> "ProactiveHelloBackend":
        if self._task is None:
            self._task = self.sim.schedule_periodic(
                self.HELLO_INTERVAL, self._send_hello, jitter=0.2
            )
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None
        self._socket.close()

    # -- API --------------------------------------------------------------------
    def register_user(self, aor: str, host: str, port: int) -> None:
        self._local[aor] = UserBinding(aor=aor, host=host, port=port)
        self._send_hello()

    def resolve(self, aor: str, callback: ResolveCallback, timeout: float = 2.0) -> None:
        binding = self._lookup(aor)
        if binding is not None:
            self.sim.schedule(0.0, callback, binding)
            return
        self.sim.schedule(timeout, lambda: callback(self._lookup(aor)))

    def _lookup(self, aor: str) -> UserBinding | None:
        local = self._local.get(aor)
        if local is not None:
            return local
        entry = self._table.get(aor)
        if entry is not None and entry.expires_at > self.sim.now:
            return entry.binding
        return None

    def table_size(self) -> int:
        now = self.sim.now
        return len(self._local) + sum(
            1 for entry in self._table.values() if entry.expires_at > now
        )

    # -- dissemination ----------------------------------------------------------------
    def _send_hello(self) -> None:
        now = self.sim.now
        bindings = list(self._local.values()) + [
            entry.binding for entry in self._table.values() if entry.expires_at > now
        ]
        if not bindings:
            return
        self._seq = (self._seq + 1) & 0xFFFF
        self._seen[(self.node.ip, self._seq)] = now + 60.0
        data = _encode_hello(self.node.ip, self._seq, bindings)
        self.node.stats.increment("hello.messages_sent")
        self._socket.send(BROADCAST, HELLO_PORT, data, ttl=self.FLOOD_HOPS)

    def _on_datagram(self, data: bytes, src_ip: str, sport: int) -> None:
        try:
            origin, seq, ttl, bindings = _decode_hello(data)
        except CodecError:
            return
        now = self.sim.now
        key = (origin, seq)
        if self._seen.get(key, 0.0) > now or origin == self.node.ip:
            return
        self._seen[key] = now + 60.0
        if len(self._seen) > 4096:
            self._seen = {k: v for k, v in self._seen.items() if v > now}
        for binding in bindings:
            if binding.aor not in self._local:
                self._table[binding.aor] = _HelloEntry(
                    binding=binding, expires_at=now + self.BINDING_LIFETIME
                )
        if ttl > 1:
            self.node.stats.increment("hello.messages_forwarded")
            self._socket.send(BROADCAST, HELLO_PORT, _rewrite_ttl(data, ttl - 1), ttl=ttl - 1)
