"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
applications can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation core."""


class NetworkError(ReproError):
    """Raised for IP/transport layer failures (no route, port in use...)."""


class NoRouteError(NetworkError):
    """Raised or reported when a packet cannot be routed to its destination."""

    def __init__(self, destination: str, message: str | None = None) -> None:
        super().__init__(message or f"no route to host {destination}")
        self.destination = destination


class PortInUseError(NetworkError):
    """Raised when binding a UDP port that is already bound on the node."""

    def __init__(self, port: int) -> None:
        super().__init__(f"UDP port {port} already bound")
        self.port = port


class CodecError(ReproError):
    """Raised when a wire message cannot be encoded or decoded."""


class SipError(ReproError):
    """Base class for SIP stack errors."""


class SipParseError(SipError, CodecError):
    """Raised when a SIP message or URI fails to parse."""


class SipTransactionError(SipError):
    """Raised for invalid transaction-layer operations."""


class SipDialogError(SipError):
    """Raised for invalid dialog-layer operations."""


class SlpError(ReproError):
    """Base class for SLP errors."""


class ServiceNotFoundError(SlpError):
    """Raised when a service lookup finds no match before its deadline."""

    def __init__(self, service_type: str, detail: str | None = None) -> None:
        super().__init__(detail or f"no service of type {service_type!r} found")
        self.service_type = service_type


class GatewayError(ReproError):
    """Raised for gateway/tunnel management failures."""


class ConfigError(ReproError):
    """Raised for invalid component configuration."""


class MetricsError(ReproError):
    """Raised for invalid metrics registration, export or profiler use."""
