"""Protocol dissectors: structured decode of captured packets.

Turns a captured frame into a tree of protocol layers with named fields —
AODV, OLSR, SLP (including SIPHoc piggyback extensions), SIP, RTP,
SIPHoc tunnel frames (recursively) and the related-work baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.extension import (
    EXT_SLP_ADVERT,
    EXT_SLP_QUERY,
    EXT_SLP_REPLY,
    decode_extension,
)
from repro.core.tunnel import decode_inner_packet
from repro.errors import CodecError, SipParseError
from repro.netsim.capture import CapturedFrame
from repro.netsim.packet import (
    PORT_AODV,
    PORT_OLSR,
    PORT_SIPHOC_CTRL,
    PORT_SIPHOC_TUNNEL,
    PORT_SLP,
    Packet,
)
from repro.routing.messages import (
    OLSR_HELLO,
    OLSR_SLP,
    OLSR_TC,
    Rerr,
    Rrep,
    Rreq,
    decode_aodv,
    decode_hello_body,
    decode_olsr_packet,
    decode_tc_body,
)
from repro.rtp.packet import decode_rtp
from repro.sip.message import SipRequest, parse_message
from repro.slp.messages import (
    SlpMessage,
    SrvAck,
    SrvDeReg,
    SrvReg,
    SrvRply,
    SrvRqst,
    decode_slp,
)
from repro.slp.service import parse_attributes

Field = tuple[str, str]


@dataclass
class Layer:
    """One protocol layer in a dissection."""

    name: str
    fields: list[Field] = field(default_factory=list)
    children: list["Layer"] = field(default_factory=list)

    def add(self, label: str, value: object) -> "Layer":
        self.fields.append((label, str(value)))
        return self

    def find(self, name: str) -> "Layer | None":
        if self.name.startswith(name):
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


@dataclass
class Dissection:
    """A fully dissected packet."""

    layers: list[Layer]

    def find(self, name: str) -> Layer | None:
        for layer in self.layers:
            found = layer.find(name)
            if found is not None:
                return found
        return None


def dissect_frame(frame: CapturedFrame, number: int | None = None) -> Dissection:
    """Dissect a captured wireless frame."""
    layers = [_frame_layer(frame, number)]
    layers.extend(dissect_packet(frame.packet).layers)
    return Dissection(layers=layers)


def dissect_packet(packet: Packet) -> Dissection:
    layers = [_ip_layer(packet), _udp_layer(packet)]
    layers.extend(_payload_layers(packet.dport, packet.sport, packet.data))
    return Dissection(layers=layers)


# -- per-layer builders ---------------------------------------------------------


def _frame_layer(frame: CapturedFrame, number: int | None) -> Layer:
    title = f"Frame {number}" if number is not None else "Frame"
    layer = Layer(f"{title}: {frame.packet.size} bytes on wire (simulated 802.11)")
    layer.add("Arrival Time", f"{frame.time:.6f}s")
    layer.add("Sender", frame.sender_ip)
    layer.add("Receiver", frame.receiver_ip if frame.receiver_ip != "*" else "Broadcast")
    layer.add("Delivered", "yes" if frame.delivered else "no (lost)")
    return layer


def _ip_layer(packet: Packet) -> Layer:
    layer = Layer(f"Internet Protocol, Src: {packet.src}, Dst: {packet.dst}")
    layer.add("Time to Live", packet.ttl)
    layer.add("Protocol", "UDP (17)")
    return layer


def _udp_layer(packet: Packet) -> Layer:
    layer = Layer(
        f"User Datagram Protocol, Src Port: {packet.sport}, Dst Port: {packet.dport}"
    )
    layer.add("Length", len(packet.data) + 8)
    return layer


def _payload_layers(dport: int, sport: int, data: bytes) -> list[Layer]:
    try:
        if dport == PORT_AODV:
            return [_aodv_layer(data)]
        if dport == PORT_OLSR:
            return [_olsr_layer(data)]
        if dport == PORT_SLP:
            return [_slp_layer(decode_slp(data))]
        if dport == PORT_SIPHOC_TUNNEL:
            return _tunnel_layers(data)
        if dport == PORT_SIPHOC_CTRL:
            return [Layer("SIPHoc Tunnel Control").add("Length", len(data))]
        if 16384 <= dport < 32768:
            return [_rtp_layer(data)]
        if 5060 <= dport < 5100 or 5060 <= sport < 5100:
            return [_sip_layer(data)]
    except (CodecError, SipParseError):
        pass
    return [Layer("Data").add("Length", f"{len(data)} bytes")]


_AODV_TYPE_NAMES = {1: "Route Request (RREQ)", 2: "Route Reply (RREP)", 3: "Route Error (RERR)"}


def _aodv_layer(data: bytes) -> Layer:
    message, extensions = decode_aodv(data)
    layer = Layer("Ad hoc On-demand Distance Vector Routing Protocol")
    if isinstance(message, Rreq):
        layer.add("Type", _AODV_TYPE_NAMES[1])
        layer.add("Hop Count", message.hop_count)
        layer.add("RREQ Id", message.rreq_id)
        layer.add("Destination IP", message.dest_ip)
        layer.add("Destination Sequence", message.dest_seq)
        layer.add("Originator IP", message.orig_ip)
        layer.add("Originator Sequence", message.orig_seq)
        if message.dest_only:
            layer.add("Flags", "Destination only")
    elif isinstance(message, Rrep):
        kind = "Hello" if message.is_hello() else _AODV_TYPE_NAMES[2]
        layer.add("Type", kind)
        layer.add("Hop Count", message.hop_count)
        layer.add("Destination IP", message.dest_ip)
        layer.add("Destination Sequence", message.dest_seq)
        layer.add("Originator IP", message.orig_ip)
        layer.add("Lifetime", f"{message.lifetime_ms} ms")
    elif isinstance(message, Rerr):
        layer.add("Type", _AODV_TYPE_NAMES[3])
        layer.add("Unreachable Destinations", len(message.unreachable))
        for ip, seq in message.unreachable:
            layer.add("Unreachable", f"{ip} (seq {seq})")
    for extension in extensions:
        slp_message = decode_extension(extension)
        if slp_message is not None:
            child = _slp_layer(slp_message)
            child.name = f"SIPHoc Extension ({_ext_name(extension.ext_type)}): {child.name}"
            layer.children.append(child)
        else:
            layer.children.append(
                Layer(f"Unknown Extension (type {extension.ext_type})").add(
                    "Length", len(extension.body)
                )
            )
    return layer


def _ext_name(ext_type: int) -> str:
    return {
        EXT_SLP_ADVERT: "SLP Advertisement",
        EXT_SLP_QUERY: "SLP Query",
        EXT_SLP_REPLY: "SLP Reply",
    }.get(ext_type, f"type {ext_type}")


_OLSR_TYPE_NAMES = {OLSR_HELLO: "HELLO", OLSR_TC: "TC", OLSR_SLP: "SIPHoc SLP (130)"}


def _olsr_layer(data: bytes) -> Layer:
    packet_seq, messages = decode_olsr_packet(data)
    layer = Layer("Optimized Link State Routing Protocol")
    layer.add("Packet Sequence", packet_seq)
    layer.add("Messages", len(messages))
    for message in messages:
        name = _OLSR_TYPE_NAMES.get(message.msg_type, f"type {message.msg_type}")
        child = Layer(f"OLSR Message: {name}")
        child.add("Originator", message.orig_ip)
        child.add("TTL / Hops", f"{message.ttl} / {message.hops}")
        child.add("Sequence", message.seq)
        child.add("Validity", f"{message.vtime:.1f}s")
        try:
            if message.msg_type == OLSR_HELLO:
                hello = decode_hello_body(message.body)
                for code, ips in sorted(hello.links.items()):
                    label = {1: "Asym", 2: "Sym", 3: "MPR"}.get(code, str(code))
                    child.add(f"{label} Neighbors", ", ".join(ips) or "-")
            elif message.msg_type == OLSR_TC:
                tc = decode_tc_body(message.body)
                child.add("ANSN", tc.ansn)
                child.add("Advertised Neighbors", ", ".join(tc.neighbors) or "-")
            elif message.msg_type == OLSR_SLP:
                child.children.append(_slp_layer(decode_slp(message.body)))
        except CodecError:
            child.add("Body", f"{len(message.body)} bytes (undecodable)")
        layer.children.append(child)
    return layer


def _slp_layer(message: SlpMessage) -> Layer:
    if isinstance(message, SrvRqst):
        layer = Layer("Service Location Protocol: Service Request (SrvRqst)")
        layer.add("XID", message.xid)
        layer.add("Service Type", message.service_type)
        layer.add("Predicate", message.predicate or "-")
        layer.add("Requester", message.requester or "-")
        return layer
    if isinstance(message, SrvRply):
        layer = Layer("Service Location Protocol: Service Reply (SrvRply)")
        layer.add("XID", message.xid)
        layer.add("URL Entries", len(message.entries))
        for entry in message.entries:
            child = Layer(f"URL Entry: {entry.url}")
            child.add("Lifetime", f"{entry.lifetime}s")
            for key, value in parse_attributes(entry.attributes).items():
                child.add(f"Attribute: {key}", value)
            layer.children.append(child)
        return layer
    if isinstance(message, SrvReg):
        layer = Layer("Service Location Protocol: Service Registration (SrvReg)")
        layer.add("XID", message.xid)
        layer.add("Service URL", message.entry.url)
        layer.add("Lifetime", f"{message.entry.lifetime}s")
        for key, value in parse_attributes(message.entry.attributes).items():
            layer.add(f"Attribute: {key}", value)
        return layer
    if isinstance(message, SrvDeReg):
        layer = Layer("Service Location Protocol: Service Deregistration (SrvDeReg)")
        layer.add("XID", message.xid)
        layer.add("Service URL", message.url)
        return layer
    if isinstance(message, SrvAck):
        layer = Layer("Service Location Protocol: Service Acknowledge (SrvAck)")
        layer.add("XID", message.xid)
        layer.add("Error Code", message.error)
        return layer
    return Layer("Service Location Protocol: Unknown")


def _sip_layer(data: bytes) -> Layer:
    message = parse_message(data)
    if isinstance(message, SipRequest):
        layer = Layer(f"Session Initiation Protocol: {message.method} {message.uri}")
    else:
        layer = Layer(f"Session Initiation Protocol: Status {message.status} {message.reason}")
    for name in ("Via", "From", "To", "Call-ID", "CSeq", "Contact", "Record-Route", "Route"):
        for value in message.headers.get_all(name):
            layer.add(name, value)
    if message.body:
        content_type = message.headers.get("Content-Type") or "unknown"
        layer.add("Message Body", f"{len(message.body)} bytes ({content_type})")
    return layer


def _rtp_layer(data: bytes) -> Layer:
    packet = decode_rtp(data)
    layer = Layer("Real-Time Transport Protocol")
    layer.add("Payload Type", packet.payload_type)
    layer.add("Sequence", packet.sequence)
    layer.add("Timestamp", packet.timestamp)
    layer.add("SSRC", f"0x{packet.ssrc:08x}")
    layer.add("Marker", "set" if packet.marker else "not set")
    layer.add("Payload", f"{len(packet.payload)} bytes")
    return layer


def _tunnel_layers(data: bytes) -> list[Layer]:
    inner = decode_inner_packet(data)
    header = Layer("SIPHoc Layer-2 Tunnel (encapsulated IP)")
    header.add("Inner Length", len(data))
    inner_dissection = dissect_packet(inner)
    return [header] + inner_dissection.layers
