"""Packet analyzer: dissectors + wireshark-style rendering.

The substitute for the Wireshark screenshots in the paper (Figure 5 shows
an AODV route reply carrying encapsulated SIP contact information; this
package regenerates that view from a simulated capture).
"""

from repro.analyzer.dissect import Dissection, Layer, dissect_frame, dissect_packet
from repro.analyzer.render import (
    render_capture,
    render_dissection,
    render_frame,
    render_layer,
    summarize_frame,
)

__all__ = [
    "Dissection",
    "Layer",
    "dissect_frame",
    "dissect_packet",
    "render_capture",
    "render_dissection",
    "render_frame",
    "render_layer",
    "summarize_frame",
]
