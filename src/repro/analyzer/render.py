"""Wireshark-style text rendering of dissections (the Figure 5 view)."""

from __future__ import annotations

from typing import Callable, Iterable

from repro.analyzer.dissect import Dissection, Layer, dissect_frame
from repro.netsim.capture import CapturedFrame


def render_layer(layer: Layer, indent: int = 0) -> list[str]:
    pad = "    " * indent
    lines = [f"{pad}{layer.name}"]
    lines.extend(f"{pad}    {label}: {value}" for label, value in layer.fields)
    for child in layer.children:
        lines.extend(render_layer(child, indent + 1))
    return lines


def render_dissection(dissection: Dissection) -> str:
    lines: list[str] = []
    for layer in dissection.layers:
        lines.extend(render_layer(layer))
    return "\n".join(lines)


def render_frame(frame: CapturedFrame, number: int | None = None) -> str:
    """Full wireshark-like detail pane for one captured frame."""
    return render_dissection(dissect_frame(frame, number))


def summarize_frame(frame: CapturedFrame, number: int) -> str:
    """One packet-list row: number, time, src, dst, protocol, info."""
    dissection = dissect_frame(frame, number)
    protocol, info = _protocol_and_info(dissection)
    dst = frame.receiver_ip if frame.receiver_ip != "*" else "Broadcast"
    return (
        f"{number:>5}  {frame.time:>10.6f}  {frame.sender_ip:>15}  {dst:>15}  "
        f"{protocol:<8} {frame.packet.size:>5}  {info}"
    )


def render_capture(
    frames: Iterable[CapturedFrame],
    predicate: Callable[[CapturedFrame], bool] | None = None,
) -> str:
    """The packet-list pane for a whole capture."""
    header = (
        f"{'No.':>5}  {'Time':>10}  {'Source':>15}  {'Destination':>15}  "
        f"{'Proto':<8} {'Len':>5}  Info"
    )
    rows = [header]
    for number, frame in enumerate(frames, start=1):
        if predicate is not None and not predicate(frame):
            continue
        rows.append(summarize_frame(frame, number))
    return "\n".join(rows)


def render_ladder(
    participants: Iterable[str],
    arrows: Iterable[tuple[float, str, str, str]],
) -> str:
    """Text sequence ("ladder") diagram: lifelines plus labelled arrows.

    ``participants`` are the ordered column identities; each ``arrow`` is
    ``(time, src, dst, label)`` where src/dst name a participant. Arrows to
    unknown participants are skipped; a self-arrow prints the label beside
    the lifeline.
    """
    names = list(participants)
    rows = list(arrows)
    if not names:
        return "(empty ladder: no participants)"
    index = {name: i for i, name in enumerate(names)}
    label_width = max((len(label) for _, _, _, label in rows), default=0)
    name_width = max(len(name) for name in names)
    col = max(label_width + 6, name_width + 2, 14)
    centers = [i * col + col // 2 for i in range(len(names))]
    width = len(names) * col
    time_pad = " " * 12

    def lifelines() -> list[str]:
        chars = [" "] * width
        for center in centers:
            chars[center] = "|"
        return chars

    header = [" "] * width
    for name, center in zip(names, centers):
        start = min(max(center - len(name) // 2, 0), width - len(name))
        header[start : start + len(name)] = name
    lines = [time_pad + "".join(header).rstrip(), time_pad + "".join(lifelines()).rstrip()]

    for time, src, dst, label in rows:
        if src not in index or dst not in index:
            continue
        chars = lifelines()
        a, b = centers[index[src]], centers[index[dst]]
        if a == b:
            tail = min(a + 2 + len(label), width)
            chars[a + 2 : tail] = label[: tail - a - 2]
        else:
            lo, hi = min(a, b), max(a, b)
            for x in range(lo + 1, hi):
                chars[x] = "-"
            if b > a:
                chars[hi - 1] = ">"
            else:
                chars[lo + 1] = "<"
            start = max(lo + 2, (lo + hi) // 2 - len(label) // 2)
            for offset, ch in enumerate(label):
                pos = start + offset
                if lo + 1 < pos < hi - 1:
                    chars[pos] = ch
        lines.append(f"{time:>10.6f}  " + "".join(chars).rstrip())
    return "\n".join(lines)


def _protocol_and_info(dissection: Dissection) -> tuple[str, str]:
    for layer in reversed(dissection.layers):
        name = layer.name
        if name.startswith("Ad hoc On-demand"):
            kind = dict(layer.fields).get("Type", "")
            extras = [child.name for child in layer.children]
            info = kind + (f" + {len(extras)} SIPHoc ext" if extras else "")
            return ("AODV", info)
        if name.startswith("Optimized Link State"):
            kinds = [child.name.split(": ", 1)[-1] for child in layer.children]
            return ("OLSR", ", ".join(kinds) or "empty packet")
        if name.startswith("Session Initiation"):
            return ("SIP", name.split(": ", 1)[-1])
        if name.startswith("Real-Time Transport"):
            fields = dict(layer.fields)
            return ("RTP", f"PT={fields.get('Payload Type')} Seq={fields.get('Sequence')}")
        if name.startswith("Service Location"):
            return ("SLP", name.split(": ", 1)[-1])
        if name.startswith("SIPHoc Layer-2 Tunnel"):
            return ("TUNNEL", "encapsulated IP packet")
        if name.startswith("SIPHoc Tunnel Control"):
            return ("TUNNEL", "control")
    return ("DATA", "")
