"""Pluggable event kernels for the discrete-event simulator.

The :class:`~repro.netsim.simulator.Simulator` facade owns the seeded RNG
and the public API; the *kernel* owns the clock, the sequence counter and
the pending-event structure. Two kernels implement the same contract:

``HeapKernel``
    The reference implementation: one binary heap of ``(time, seq, event)``
    tuples (tuple entries compare in C, never touching the callback).
    Cancellation leaves a tombstone; the heap is lazily compacted with
    hysteresis (see :attr:`HeapKernel.COMPACT_MIN`).

``CalendarKernel``
    The fast path: a calendar queue (Brown 1988) — a power-of-two ring of
    buckets each ``width`` seconds wide, a cursor walking the ring, and a
    sorted *overflow band* (small heap) for events beyond the ring's
    horizon. Scheduling is an O(1) list append; popping sorts one bucket
    at a time. Cancelling the most recently scheduled event in a bucket
    pops it O(1) with no tombstone — the schedule-then-cancel churn of SIP
    transaction timers costs two list operations instead of a heap entry
    plus an eventual O(N) compaction sweep. Bucket width self-tunes from
    the observed batch/scan ratio.

Both kernels pop events in exactly ascending ``(time, seq)`` order, so a
seeded scenario is bit-identical under either — ``tests/netsim/
test_kernel_parity.py`` and the ``tools/check.sh`` parity gate enforce it.

This module is the only place allowed to import :mod:`heapq`
(lint rule PERF001): everything else must go through a kernel.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, Iterable, Sequence

from repro.errors import SimulationError

#: (delay, callback, args) triples accepted by ``schedule_batch``.
BatchEntry = tuple[float, Callable[..., None], tuple[Any, ...]]


class EventHandle:
    """A scheduled event and its cancellation handle (one object, no wrapper).

    Kernels construct these via ``__new__`` + direct stores — profiled ~35%
    faster than ``__init__`` dispatch, and this is the hottest allocation in
    the simulator.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "popped", "_slot", "_kernel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.popped = False
        self._slot = None
        self._kernel = None

    @property
    def done(self) -> bool:
        """True once the event can never fire again (fired or cancelled)."""
        return self.cancelled or self.popped

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        if self.cancelled or self.popped:
            return
        self.cancelled = True
        kernel = self._kernel
        if kernel is not None:
            kernel._on_cancel(self)


class _DeliveryTrain:
    """One kernel entry carrying a whole batch of pre-drawn deliveries.

    ``items`` is sorted ascending by ``(time, seq)``; the seq values were
    reserved from the kernel's counter at batch-submission time, so every
    delivery pops in exactly the global order it would have had as an
    individual event. The train re-arms itself with the *next* item's
    original ``(time, seq)`` after each firing — N deliveries cost one
    pending-structure entry instead of N.
    """

    __slots__ = ("items", "index")

    def fire(self, kernel: "_KernelBase") -> None:
        items = self.items
        index = self.index
        entry = items[index]
        index += 1
        if index < len(items):
            self.index = index
            nxt = items[index]
            kernel._push_raw(nxt[0], nxt[1], self)
        kernel._live -= 1
        entry[2](*entry[3])


class _KernelBase:
    """Shared contract: seq reservation, batch trains, diagnostics."""

    __slots__ = ()
    name = "?"

    # Subclasses provide: now, seq, processed, _live, _tombstones,
    # _compactions, schedule, schedule_at, run, _push_raw, _on_cancel,
    # and the `size` property.

    def schedule_batch(self, entries: Sequence[BatchEntry]) -> int:
        """Schedule many ``(delay, callback, args)`` deliveries as one train.

        Sequence numbers are reserved in input order — exactly as if each
        entry had been passed to :meth:`schedule` individually — so the
        global (time, seq) pop order, and therefore every downstream RNG
        draw and trace line, is identical to the unbatched path.
        """
        now = self.now
        seq = self.seq
        items = []
        append = items.append
        for delay, callback, args in entries:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            seq += 1
            append((now + delay, seq, callback, args))
        self.seq = seq
        count = len(items)
        if count == 0:
            return 0
        if count > 1:
            items.sort()  # (time, seq) — seq is unique, callbacks never compared
        train = _DeliveryTrain.__new__(_DeliveryTrain)
        train.items = items
        train.index = 0
        first = items[0]
        self._push_raw(first[0], first[1], train)
        self._live += count
        return count

    def run_scraped(self, until: float, scraper: Any) -> None:
        """Advance to ``until``, pausing at scrape boundaries.

        Chops one clock advance into chunks at the scraper's due times and
        snapshots between chunks. Chunked :meth:`run` calls pop exactly the
        same ``(time, seq)`` sequence as one big call (events fire at their
        own times; the intermediate ``now`` writes below are overwritten by
        the Simulator facade's final advance), so the event schedule is
        byte-identical with scraping on or off — the metrics determinism
        contract (DESIGN.md §5i).
        """
        nxt = scraper.next_due
        while nxt <= until:
            self.run(nxt)
            if self.now < nxt:
                self.now = nxt
            scraper.scrape(nxt)
            nxt = scraper.next_due
        self.run(until)

    @property
    def live(self) -> int:
        """Number of live (non-cancelled) scheduled events. O(1)."""
        return self._live

    @property
    def compactions(self) -> int:
        return self._compactions


class HeapKernel(_KernelBase):
    """Reference kernel: binary heap + tombstone cancellation.

    Compaction fires only once tombstones both exceed an absolute floor
    (:attr:`COMPACT_MIN`) *and* outnumber live events two to one. The floor
    is the hysteresis: the previous ``tombstones > live`` trigger re-fired
    on nearly every cancellation when few live events were pending
    (schedule-then-cancel churn around a lone keepalive compacted the heap
    every other cycle), which is exactly the 0.5 ops/s pathology in
    BENCH_2026-08-06's ``test_cancelled_timer_churn``.
    """

    __slots__ = ("now", "seq", "processed", "_heap", "_live", "_tombstones", "_compactions")

    name = "heap"

    #: Hysteresis floor: never compact with fewer tombstones than this.
    COMPACT_MIN = 64

    def __init__(self) -> None:
        self.now = 0.0
        self.seq = 0
        self.processed = 0
        self._heap: list[tuple] = []
        self._live = 0
        self._tombstones = 0
        self._compactions = 0

    # -- scheduling ------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        self.seq = seq = self.seq + 1
        event = EventHandle.__new__(EventHandle)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.popped = False
        event._slot = None
        event._kernel = self
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, clock is already at {self.now:.6f}"
            )
        self.seq = seq = self.seq + 1
        event = EventHandle.__new__(EventHandle)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.popped = False
        event._slot = None
        event._kernel = self
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def _push_raw(self, time: float, seq: int, obj: Any) -> None:
        heapq.heappush(self._heap, (time, seq, obj))

    # -- cancellation ----------------------------------------------------
    def _on_cancel(self, event: EventHandle) -> None:
        self._live -= 1
        self._tombstones = tombstones = self._tombstones + 1
        if tombstones >= self.COMPACT_MIN and tombstones > 2 * self._live:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones; pop order is unchanged."""
        self._heap = [
            entry
            for entry in self._heap
            if not (entry[2].__class__ is EventHandle and entry[2].cancelled)
        ]
        heapq.heapify(self._heap)
        self._tombstones = 0
        self._compactions += 1

    # -- event loop ------------------------------------------------------
    def run(self, until: float) -> None:
        """Fire every pending entry with ``time <= until`` in (time, seq) order.

        Leaves ``now`` at the last fired event; the Simulator facade is
        responsible for the final clock advance of :meth:`Simulator.run`.
        """
        heap = self._heap
        pop = heapq.heappop
        handle_cls = EventHandle
        processed = 0
        try:
            while heap:
                entry = heap[0]
                time = entry[0]
                if time > until:
                    break
                pop(heap)
                obj = entry[2]
                if obj.__class__ is handle_cls:
                    if obj.cancelled:
                        self._tombstones -= 1
                        continue
                    obj.popped = True
                    self._live -= 1
                    self.now = time
                    processed += 1
                    obj.callback(*obj.args)
                else:  # _DeliveryTrain
                    self.now = time
                    processed += 1
                    obj.fire(self)
        finally:
            self.processed += processed

    @property
    def size(self) -> int:
        """Pending-structure entries including tombstones (memory diagnostics)."""
        return len(self._heap)


class CalendarKernel(_KernelBase):
    """Calendar-queue kernel: bucketed ring + sorted overflow band.

    Geometry: ``nslots`` (power of two) buckets of ``width`` seconds.
    Bucket indices are *absolute* — event time ``t`` maps to bucket
    ``int(t / width)``, stored at ring position ``index & (nslots - 1)``.
    A cursor ``_cur`` holds the current absolute bucket; the ring covers
    the horizon ``[_cur, _cur + nslots)``. Events beyond the horizon wait
    in the overflow heap and migrate into the ring as the cursor advances
    (each advance extends the horizon by one bucket, so migration is
    incremental and amortized O(log overflow) per event).

    Popping drains the cursor's bucket into a sorted *due* list and
    consumes it by index; arrivals into the current bucket are merged in
    before every pop, so the global pop order is exactly ascending
    ``(time, seq)`` — bit-identical to the heap kernel.

    Cancellation of the most recent entry in its bucket is a tail pop
    (O(1), no garbage); anything else becomes a tombstone swept by the
    same hysteresis compaction the heap kernel uses.
    """

    __slots__ = (
        "now", "seq", "processed", "_live", "_tombstones", "_compactions",
        "_width", "_inv", "_nslots", "_mask", "_ring", "_cur", "_overflow",
        "_ring_entries", "_due", "_due_index",
        "_adv_count", "_adv_scans", "_drained", "_resizes", "_compact_floor",
    )

    name = "calendar"

    COMPACT_MIN = 64
    MIN_WIDTH = 1e-5
    MAX_WIDTH = 10.0
    MIN_SLOTS = 256
    MAX_SLOTS = 1 << 16
    #: Drained-batch size the width refit steers toward: big enough that the
    #: per-bucket sort amortizes, small enough that sorts stay cache-friendly.
    TARGET_BATCH = 8.0
    #: Advances between bucket-geometry fitness checks.
    RESIZE_CHECK = 256

    def __init__(self, width: float = 0.01, nslots: int = 1024) -> None:
        if nslots & (nslots - 1):
            raise SimulationError(f"nslots must be a power of two, got {nslots}")
        self.now = 0.0
        self.seq = 0
        self.processed = 0
        self._live = 0
        self._tombstones = 0
        self._compactions = 0
        self._width = width
        self._inv = 1.0 / width
        self._nslots = nslots
        self._mask = nslots - 1
        self._ring: list[list[tuple]] = [[] for _ in range(nslots)]
        self._cur = 0  # absolute index of the current bucket
        self._overflow: list[tuple] = []  # heap of (time, seq, obj) beyond horizon
        self._ring_entries = 0  # physical entries in ring slots (incl. tombstones)
        self._due: list[tuple] = []  # current bucket, sorted; consumed by index
        self._due_index = 0
        self._adv_count = 0
        self._adv_scans = 0
        self._drained = 0
        self._resizes = 0
        self._compact_floor = self.COMPACT_MIN

    # -- scheduling ------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        self.seq = seq = self.seq + 1
        event = EventHandle.__new__(EventHandle)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.popped = False
        event._kernel = self
        cur = self._cur
        index = int(time * self._inv)
        if index > cur:
            if index < cur + self._nslots:
                slot = self._ring[index & self._mask]
                slot.append((time, seq, event))
                event._slot = slot
                self._ring_entries += 1
            else:
                event._slot = None
                heapq.heappush(self._overflow, (time, seq, event))
        else:
            # Lands in the bucket currently being consumed: insert into the
            # sorted due list (times are always >= now, so the insertion
            # point is never behind the consumption index — usually it is
            # the very end, a plain append).
            due = self._due
            if self._due_index >= len(due):
                due.append((time, seq, event))
            else:
                insort(due, (time, seq, event), self._due_index)
            event._slot = due
        self._live += 1
        return event

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, clock is already at {self.now:.6f}"
            )
        self.seq = seq = self.seq + 1
        event = EventHandle.__new__(EventHandle)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.popped = False
        event._kernel = self
        cur = self._cur
        index = int(time * self._inv)
        if index > cur:
            if index < cur + self._nslots:
                slot = self._ring[index & self._mask]
                slot.append((time, seq, event))
                event._slot = slot
                self._ring_entries += 1
            else:
                event._slot = None
                heapq.heappush(self._overflow, (time, seq, event))
        else:
            # Lands in the bucket currently being consumed: insert into the
            # sorted due list (times are always >= now, so the insertion
            # point is never behind the consumption index — usually it is
            # the very end, a plain append).
            due = self._due
            if self._due_index >= len(due):
                due.append((time, seq, event))
            else:
                insort(due, (time, seq, event), self._due_index)
            event._slot = due
        self._live += 1
        return event

    def _push_raw(self, time: float, seq: int, obj: Any) -> None:
        cur = self._cur
        index = int(time * self._inv)
        if index > cur:
            if index < cur + self._nslots:
                self._ring[index & self._mask].append((time, seq, obj))
                self._ring_entries += 1
            else:
                heapq.heappush(self._overflow, (time, seq, obj))
        else:
            due = self._due
            if self._due_index >= len(due):
                due.append((time, seq, obj))
            else:
                insort(due, (time, seq, obj), self._due_index)

    # -- cancellation ----------------------------------------------------
    def _on_cancel(self, event: EventHandle) -> None:
        self._live -= 1
        slot = event._slot
        # Tail pop: the common schedule-then-cancel churn (SIP transaction
        # timers) cancels the *newest* entry in its bucket — remove it
        # outright, no tombstone, no compaction debt. The same works when
        # the bucket has already been taken as the due list (``slot`` is
        # then the due list itself; only ring residency is accounted).
        if slot is not None and slot and slot[-1][2] is event:
            slot.pop()
            event._slot = None
            if slot is not self._due:
                self._ring_entries -= 1
            return
        self._tombstones = tombstones = self._tombstones + 1
        if tombstones >= self._compact_floor and tombstones > 2 * self._live:
            before = tombstones
            removed = self._compact()
            # Tombstones inside the due list can only clear when popped; if
            # a sweep found little to remove, raise the floor so steady
            # churn cannot re-trigger O(N) sweeps on every cancellation.
            if removed * 2 < before:
                self._compact_floor = max(self.COMPACT_MIN, 2 * (before - removed))
            else:
                self._compact_floor = self.COMPACT_MIN

    def _compact(self) -> int:
        """Sweep tombstones from ring slots and the overflow band, in place."""
        handle_cls = EventHandle
        ring_removed = 0
        for slot in self._ring:
            if not slot:
                continue
            kept = [
                entry
                for entry in slot
                if not (entry[2].__class__ is handle_cls and entry[2].cancelled)
            ]
            if len(kept) != len(slot):
                ring_removed += len(slot) - len(kept)
                slot[:] = kept  # in place: survivors' _slot references stay valid
        overflow = self._overflow
        kept = [
            entry
            for entry in overflow
            if not (entry[2].__class__ is handle_cls and entry[2].cancelled)
        ]
        overflow_removed = len(overflow) - len(kept)
        if overflow_removed:
            heapq.heapify(kept)
            self._overflow = kept
        self._ring_entries -= ring_removed
        removed = ring_removed + overflow_removed
        self._tombstones -= removed
        self._compactions += 1
        return removed

    # -- event loop ------------------------------------------------------
    def run(self, until: float) -> None:
        """Fire every pending entry with ``time <= until`` in (time, seq) order.

        The current bucket is consumed along two paths. A lone entry with no
        due backlog pops straight off the ring list — no allocation, no sort
        (the dominant case for sparse timer chains). Otherwise the bucket
        list is *swapped out* of the ring and becomes the due list itself
        (sorted in place, consumed by index), so taking a batch of N events
        costs one sort and one empty-list allocation, not N copies.
        """
        due = self._due
        due_index = self._due_index
        ring = self._ring
        mask = self._mask
        cur = self._cur
        handle_cls = EventHandle
        processed = 0
        try:
            while True:
                # Arrivals (including train re-arms and clamped near-past
                # times) land in the current bucket; absorb them before
                # every pop so the global (time, seq) order holds.
                slot = ring[cur & mask]
                if slot:
                    backlog = len(due) - due_index
                    if len(slot) == 1 and not backlog:
                        # Fast path: the bucket's lone entry is the global
                        # minimum — consume it in place.
                        entry = slot[0]
                        time = entry[0]
                        if time > until:
                            break
                        del slot[0]
                        self._ring_entries -= 1
                        obj = entry[2]
                        if obj.__class__ is handle_cls:
                            obj._slot = None
                            if obj.cancelled:
                                self._tombstones -= 1
                                continue
                            obj.popped = True
                            self._live -= 1
                            self.now = time
                            processed += 1
                            obj.callback(*obj.args)
                        else:  # _DeliveryTrain
                            self.now = time
                            processed += 1
                            obj.fire(self)
                        continue
                    # Batch path: swap the bucket out of the ring and adopt
                    # it as (part of) the due list.
                    ring[cur & mask] = []
                    self._ring_entries -= len(slot)
                    self._drained += len(slot)
                    if len(slot) > 1:
                        slot.sort()
                    if backlog:
                        # Merge with the unconsumed remainder. The merged
                        # list is a new object, so surviving events lose
                        # their tail-pop slot reference (cancellations fall
                        # back to the tombstone path).
                        merged = due[due_index:]
                        merged += slot
                        merged.sort()
                        for entry in merged:
                            obj = entry[2]
                            if obj.__class__ is handle_cls:
                                obj._slot = None
                        due = merged
                    else:
                        due = slot
                    self._due = due
                    due_index = 0
                    self._due_index = 0
                if due_index < len(due):
                    entry = due[due_index]
                    time = entry[0]
                    if time > until:
                        break
                    due_index += 1
                    if due_index >= len(due):
                        # Fully consumed: reset in place so current-bucket
                        # arrivals from the callback below append in O(1).
                        due.clear()
                        due_index = 0
                    elif due_index >= 4096:
                        # Bound the consumed prefix of a long backlog.
                        del due[:due_index]
                        due_index = 0
                    self._due_index = due_index
                    obj = entry[2]
                    if obj.__class__ is handle_cls:
                        if obj.cancelled:
                            self._tombstones -= 1
                            continue
                        obj.popped = True
                        self._live -= 1
                        self.now = time
                        processed += 1
                        obj.callback(*obj.args)
                    else:  # _DeliveryTrain
                        self.now = time
                        processed += 1
                        obj.fire(self)
                    continue
                if not self._advance(until):
                    break
                # A resize may have replaced the geometry; re-read it.
                ring = self._ring
                mask = self._mask
                cur = self._cur
        finally:
            del due[:due_index]
            self._due = due
            self._due_index = 0
            self.processed += processed

    def _advance(self, until: float) -> bool:
        """Move the cursor to the next bucket that may hold work ``<= until``.

        Returns False when nothing can fire within ``until`` this run.
        """
        if self._ring_entries:
            width = self._width
            ring = self._ring
            mask = self._mask
            nslots = self._nslots
            cur = self._cur
            scanned = 0
            found = False
            while True:
                nxt = cur + 1
                if nxt * width > until:
                    break
                cur = nxt
                scanned += 1
                if ring[cur & mask]:
                    found = True
                    break
                if scanned > nslots:  # pragma: no cover - accounting guard
                    raise SimulationError("calendar ring accounting corrupted")
            self._cur = cur
            self._adv_count += 1
            self._adv_scans += scanned
            self._migrate(cur)
            if self._adv_count >= self.RESIZE_CHECK:
                self._maybe_resize()
            return found
        overflow = self._overflow
        if not overflow:
            return False
        head_time = overflow[0][0]
        if head_time > until:
            return False
        cur = int(head_time * self._inv)
        if cur < self._cur:
            cur = self._cur
        self._cur = cur
        self._migrate(cur)
        return True

    def _migrate(self, cur: int) -> None:
        """Pull overflow entries that now fit inside the ring horizon."""
        overflow = self._overflow
        if not overflow:
            return
        nslots = self._nslots
        boundary = (cur + nslots) * self._width
        if overflow[0][0] >= boundary:
            return
        ring = self._ring
        mask = self._mask
        inv = self._inv
        hi = cur + nslots - 1
        pop = heapq.heappop
        handle_cls = EventHandle
        while overflow and overflow[0][0] < boundary:
            entry = pop(overflow)
            index = int(entry[0] * inv)
            if index <= cur:
                index = cur
            elif index > hi:  # float rounding right at the horizon boundary
                index = hi
            slot = ring[index & mask]
            slot.append(entry)
            obj = entry[2]
            if obj.__class__ is handle_cls:
                obj._slot = slot
            self._ring_entries += 1

    # -- geometry adaptation ---------------------------------------------
    def _maybe_resize(self) -> None:
        """Refit bucket width (and ring size) to the observed workload.

        Large drained batches mean buckets are too coarse (every pop pays
        an oversized sort); long empty-bucket scans with tiny batches mean
        they are too fine (every event pays cursor laps). The width is
        refit proportionally toward a small target batch, and the ring
        grows with the live population so a crowded horizon does not spill
        into the overflow heap. Pop order is unaffected by any of it:
        order comes from the per-bucket sort, not the geometry.
        """
        advances = self._adv_count
        batch = self._drained / advances if advances else 0.0
        scan = self._adv_scans / advances if advances else 0.0
        self._adv_count = 0
        self._adv_scans = 0
        self._drained = 0
        width = self._width
        if batch > 4.0 * self.TARGET_BATCH:
            factor = self.TARGET_BATCH / batch
            if factor < 1.0 / 64.0:
                factor = 1.0 / 64.0
            width = width * factor
        elif scan > 4.0 and batch < 2.0:
            factor = scan
            if factor > 64.0:
                factor = 64.0
            width = width * factor
        if width < self.MIN_WIDTH:
            width = self.MIN_WIDTH
        elif width > self.MAX_WIDTH:
            width = self.MAX_WIDTH
        nslots = self._nslots
        live = self._live
        while nslots < self.MAX_SLOTS and live > 2 * nslots:
            nslots *= 2
        while nslots > self.MIN_SLOTS and 8 * live < nslots:
            nslots //= 2
        if width != self._width or nslots != self._nslots:
            self._rebuild(width, nslots)

    def _rebuild(self, width: float, nslots: int) -> None:
        """Re-bucket every ring entry under a new geometry.

        Overflow entries stay in the overflow heap; a migration pass right
        after picks up any that the (possibly longer) horizon now covers.
        """
        handle_cls = EventHandle
        entries: list[tuple] = []
        dropped = 0
        for slot in self._ring:
            if not slot:
                continue
            for entry in slot:
                obj = entry[2]
                if obj.__class__ is handle_cls:
                    if obj.cancelled:
                        dropped += 1
                        continue
                    obj._slot = None
                entries.append(entry)
            slot.clear()
        if dropped:
            self._tombstones -= dropped
        self._width = width
        self._inv = inv = 1.0 / width
        if nslots != self._nslots:
            self._nslots = nslots
            self._mask = nslots - 1
            self._ring = [[] for _ in range(nslots)]
        cur = int(self.now * inv)
        self._cur = cur
        self._ring_entries = 0
        ring = self._ring
        mask = self._mask
        limit = cur + nslots
        push = heapq.heappush
        overflow = self._overflow
        for entry in entries:
            index = int(entry[0] * inv)
            if index <= cur:
                index = cur
            if index < limit:
                slot = ring[index & mask]
                slot.append(entry)
                obj = entry[2]
                if obj.__class__ is handle_cls:
                    obj._slot = slot
                self._ring_entries += 1
            else:
                push(overflow, entry)
        self._resizes += 1
        self._migrate(cur)

    @property
    def size(self) -> int:
        """Pending-structure entries including tombstones (memory diagnostics)."""
        return self._ring_entries + (len(self._due) - self._due_index) + len(self._overflow)

    @property
    def resizes(self) -> int:
        """How many times the bucket width has been refit."""
        return self._resizes


#: Kernel registry for ``Simulator(kernel=...)`` / ``ManetConfig(kernel=...)``.
KERNELS: dict[str, type] = {
    HeapKernel.name: HeapKernel,
    CalendarKernel.name: CalendarKernel,
}


def make_kernel(name: str) -> _KernelBase:
    try:
        factory = KERNELS[name]
    except KeyError:
        raise SimulationError(
            f"unknown event kernel {name!r} (use one of: {', '.join(sorted(KERNELS))})"
        ) from None
    return factory()


def iter_kernel_names() -> Iterable[str]:
    return tuple(KERNELS)
