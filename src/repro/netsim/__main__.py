"""netsim CLI: cross-kernel schedule-parity probe for ``tools/check.sh``.

Usage::

    python -m repro.netsim kernel-trace --kernel calendar --out cal.jsonl
    python -m repro.netsim kernel-trace --kernel heap --out heap.jsonl
    cmp cal.jsonl heap.jsonl

Runs one fixed seeded scenario — random mobile topology, lossy medium,
tracing on, a full SIP call — under the chosen event kernel, then writes
the byte-exact trace export followed by one ``summary`` line (Stats
summary + event counts, canonical JSON). The check.sh gate runs this once
per kernel in *fresh interpreters* (so the process-global identifier
counters start equal, no ``registry.reset_all()`` needed) and byte-compares
the two files: any schedule divergence between ``CalendarKernel`` and the
reference ``HeapKernel`` surfaces as a one-line ``cmp`` diff. The kernel
name itself is deliberately absent from the output — equal inputs must
produce equal bytes.

The in-process, fault-injecting variant of this gate lives in
``tests/netsim/test_kernel_parity.py``; this entry point exists so the
parity contract is also enforced outside pytest, subprocess-fresh, the
same way ``repro.overload smoke`` proves byte-identical reruns.
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_kernel_trace(args: argparse.Namespace) -> int:
    from repro.scenarios import ManetConfig, ManetScenario

    scenario = ManetScenario(
        ManetConfig(
            n_nodes=16,
            topology="random",
            routing="aodv",
            seed=7,
            tx_range=250.0,
            area=(600.0, 600.0),
            loss_rate=0.05,
            mobility=True,
            tracing=True,
            kernel=args.kernel,
        )
    )
    scenario.start()
    scenario.add_phone(0, "alice")
    scenario.add_phone(15, "bob")
    scenario.converge()
    scenario.phones["alice"].place_call("sip:bob@voicehoc.ch", duration=5.0)
    scenario.sim.run(scenario.sim.now + 12.0)
    scenario.stop()
    assert scenario.trace is not None
    summary = json.dumps(
        {
            "summary": scenario.stats.summary(),
            "events_processed": scenario.sim.events_processed,
            "pending_events": scenario.sim.pending_events,
        },
        sort_keys=True,
    )
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(scenario.trace.export_jsonl())
        fh.write(summary + "\n")
    print(f"kernel-trace: wrote {args.out} ({scenario.sim.events_processed} events)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.netsim",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_kt = sub.add_parser(
        "kernel-trace",
        help="run the fixed parity scenario under one kernel, write its trace",
    )
    p_kt.add_argument("--kernel", choices=("heap", "calendar"), required=True)
    p_kt.add_argument("--out", required=True, help="output JSONL path")
    p_kt.set_defaults(fn=_cmd_kernel_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
