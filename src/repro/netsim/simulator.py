"""Discrete-event simulation core.

The simulator is single-threaded and fully deterministic: events fire in
(time, sequence) order and all randomness flows from one seeded
``random.Random`` instance owned by the simulator. All higher layers (radio
medium, routing daemons, SIP timers, RTP schedules) are driven by this clock.

The pending-event structure is pluggable (see :mod:`repro.netsim.kernel`):
``Simulator(kernel="calendar")`` — the default — uses the O(1)-amortized
calendar queue; ``kernel="heap"`` selects the reference binary heap. Both
kernels pop in identical ``(time, seq)`` order, so a seeded run is
bit-identical under either; the heap stays selectable as the parity
reference exactly as the brute-force neighbor scan does for the spatial
index. Hot entry points (``schedule``, ``schedule_at``, ``schedule_batch``)
are bound straight to the kernel as instance attributes, skipping a
delegation frame on the busiest calls in the system.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.errors import SimulationError
from repro.netsim.kernel import EventHandle, make_kernel

__all__ = ["EventHandle", "PeriodicTask", "Simulator"]


class PeriodicTask:
    """A repeating task created by :meth:`Simulator.schedule_periodic`."""

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        callback: Callable[[], None],
        jitter: float = 0.0,
    ) -> None:
        self._sim = sim
        self._interval = interval
        self._jitter = jitter
        self._callback = callback
        self._stopped = False
        self._handle: EventHandle | None = None

    def start(self, initial_delay: float | None = None) -> "PeriodicTask":
        delay = self._next_delay() if initial_delay is None else initial_delay
        self._handle = self._sim.schedule(delay, self._fire)
        return self

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def running(self) -> bool:
        return not self._stopped

    def _next_delay(self) -> float:
        if self._jitter <= 0:
            return self._interval
        spread = self._jitter * self._interval
        return self._interval + self._sim.rng.uniform(-spread, spread)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._sim.schedule(self._next_delay(), self._fire)


class Simulator:
    """Deterministic discrete-event simulator with a virtual clock in seconds.

    Cancelled events either vanish immediately (calendar-queue tail pop) or
    remain as tombstones swept by hysteresis-bounded lazy compaction; a
    live-event counter keeps :attr:`pending_events` O(1) either way, so long
    runs with heavy timer churn (SIP transaction timers are scheduled and
    cancelled constantly) stay bounded in memory. Neither mechanism ever
    changes the (time, seq) pop order, so both are invisible to the
    simulation.
    """

    #: Compaction hysteresis floor (see kernel COMPACT_MIN); kept here for
    #: backward compatibility with callers sizing queue-hygiene assertions.
    COMPACT_MIN_QUEUE = 64

    def __init__(self, seed: int = 0, kernel: str = "calendar") -> None:
        self.rng = random.Random(seed)
        self.seed = seed
        self._kernel = make_kernel(kernel)
        # Bind the hot scheduling entry points directly to the kernel: one
        # attribute load instead of a Python delegation frame per event.
        self.schedule = self._kernel.schedule
        self.schedule_at = self._kernel.schedule_at
        self.schedule_batch = self._kernel.schedule_batch
        # Optional repro.trace.TraceCollector; None means tracing is off and
        # emission sites pay only this attribute read plus a None check.
        self.tracer = None
        # Optional repro.metrics.MetricsScraper; None means metrics are off
        # and run() takes the direct kernel.run path.
        self.metrics = None
        # Optional repro.metrics.profiler.KernelProfiler, set by
        # attach_profiler(); kept for introspection/uninstall.
        self.profiler = None

    @property
    def kernel(self) -> str:
        """Name of the active event kernel (``"calendar"`` or ``"heap"``)."""
        return self._kernel.name

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._kernel.now

    @property
    def events_processed(self) -> int:
        return self._kernel.processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) scheduled events. O(1)."""
        return self._kernel.live

    @property
    def queue_size(self) -> int:
        """Pending-structure entries including tombstones (memory diagnostics)."""
        return self._kernel.size

    @property
    def compactions(self) -> int:
        """How many times the kernel has swept tombstones from its structure."""
        return self._kernel.compactions

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], None],
        jitter: float = 0.0,
        initial_delay: float | None = None,
    ) -> PeriodicTask:
        """Run ``callback`` every ``interval`` seconds (optionally jittered).

        ``jitter`` is a fraction of the interval: with ``jitter=0.1`` each
        period is drawn uniformly from ``interval * [0.9, 1.1]``. Returns the
        started :class:`PeriodicTask`; call :meth:`PeriodicTask.stop` to end it.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, jitter=jitter)
        return task.start(initial_delay=initial_delay)

    def run(self, until: float) -> None:
        """Process events until the clock reaches ``until`` seconds.

        The clock always ends exactly at ``until`` even if the queue drains
        early, so repeated ``run`` calls compose predictably.
        """
        kernel = self._kernel
        if until < kernel.now:
            raise SimulationError(
                f"cannot run until {until:.6f}, clock is already at {kernel.now:.6f}"
            )
        scraper = self.metrics
        if scraper is not None and scraper.enabled:
            kernel.run_scraped(until, scraper)
        else:
            kernel.run(until)
        kernel.now = until

    def run_until_idle(self, max_time: float = 3600.0) -> None:
        """Process events until the queue drains or ``max_time`` is reached.

        Useful in tests; periodic tasks never drain, so most scenarios should
        prefer :meth:`run`. Metrics scraping does not piggyback here: the
        clock stops at the last event rather than ``max_time``, so scrape
        boundaries past the drain point would advance it — an observer
        effect. :meth:`run` is the only scrape piggyback point.
        """
        self._kernel.run(max_time)

    def attach_profiler(self, profiler: Any) -> Any:
        """Install an opt-in kernel profiler (see ``repro.metrics.profiler``).

        Delegates to ``profiler.install(self)``; :attr:`profiler` holds the
        installed instance. Zero overhead when never called: scheduling stays
        bound straight to the kernel.
        """
        profiler.install(self)
        return profiler

    def detach_profiler(self) -> None:
        """Uninstall the profiler installed by :meth:`attach_profiler`."""
        if self.profiler is not None:
            self.profiler.uninstall()

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        step: float = 0.05,
    ) -> bool:
        """Advance time in ``step`` increments until ``predicate()`` is true.

        Returns ``True`` if the predicate became true before ``timeout``
        (absolute deadline of ``now + timeout``), ``False`` otherwise.
        """
        deadline = self._kernel.now + timeout
        while self._kernel.now < deadline:
            if predicate():
                return True
            self.run(min(self._kernel.now + step, deadline))
        return predicate()

    # -- scheduling ---------------------------------------------------------
    # These class-level definitions document the API and keep
    # ``Simulator.schedule`` resolvable through the class; instances shadow
    # them in __init__ with the kernel's bound methods (one attribute load
    # instead of a delegation frame on the hottest calls in the system).
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        return self._kernel.schedule(delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        return self._kernel.schedule_at(time, callback, *args)

    def schedule_batch(self, entries: list[tuple]) -> int:
        """Schedule many ``(delay, callback, args)`` deliveries as one train.

        Sequence numbers are reserved in input order, so the pop order (and
        every downstream RNG draw) is identical to scheduling each entry
        individually — see :meth:`repro.netsim.kernel._KernelBase.schedule_batch`.
        """
        return self._kernel.schedule_batch(entries)
