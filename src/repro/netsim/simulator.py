"""Discrete-event simulation core.

The simulator is single-threaded and fully deterministic: events fire in
(time, sequence) order and all randomness flows from one seeded
``random.Random`` instance owned by the simulator. All higher layers (radio
medium, routing daemons, SIP timers, RTP schedules) are driven by this clock.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    popped: bool = field(compare=False, default=False)


class EventHandle:
    """Cancellable handle returned by :meth:`Simulator.schedule`."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _ScheduledEvent, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def done(self) -> bool:
        """True once the event can never fire again (fired or cancelled)."""
        return self._event.cancelled or self._event.popped

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        event = self._event
        if event.cancelled:
            return
        event.cancelled = True
        if not event.popped:
            self._sim._on_cancelled_in_queue()


class PeriodicTask:
    """A repeating task created by :meth:`Simulator.schedule_periodic`."""

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        callback: Callable[[], None],
        jitter: float = 0.0,
    ) -> None:
        self._sim = sim
        self._interval = interval
        self._jitter = jitter
        self._callback = callback
        self._stopped = False
        self._handle: EventHandle | None = None

    def start(self, initial_delay: float | None = None) -> "PeriodicTask":
        delay = self._next_delay() if initial_delay is None else initial_delay
        self._handle = self._sim.schedule(delay, self._fire)
        return self

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def running(self) -> bool:
        return not self._stopped

    def _next_delay(self) -> float:
        if self._jitter <= 0:
            return self._interval
        spread = self._jitter * self._interval
        return self._interval + self._sim.rng.uniform(-spread, spread)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._sim.schedule(self._next_delay(), self._fire)


class Simulator:
    """Deterministic discrete-event simulator with a virtual clock in seconds.

    Cancelled events are left in the heap as tombstones (removing an
    arbitrary heap entry is O(N)); a live-event counter keeps
    :attr:`pending_events` O(1), and the heap is lazily compacted whenever
    tombstones outnumber live events, so long runs with heavy timer churn
    (SIP transaction timers are scheduled and cancelled constantly) stay
    bounded in memory. Compaction never changes the (time, seq) pop order,
    so it is invisible to the simulation.
    """

    #: Don't bother compacting heaps smaller than this.
    COMPACT_MIN_QUEUE = 64

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.seed = seed
        self._now = 0.0
        self._seq = 0
        self._queue: list[_ScheduledEvent] = []
        self._events_processed = 0
        self._live = 0  # non-cancelled events currently in the queue
        self._tombstones = 0  # cancelled events still in the queue
        self._compactions = 0
        # Optional repro.trace.TraceCollector; None means tracing is off and
        # emission sites pay only this attribute read plus a None check.
        self.tracer = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) scheduled events. O(1)."""
        return self._live

    @property
    def queue_size(self) -> int:
        """Heap entries including cancelled tombstones (memory diagnostics)."""
        return len(self._queue)

    @property
    def compactions(self) -> int:
        """How many times the heap has been rebuilt to drop tombstones."""
        return self._compactions

    def _on_cancelled_in_queue(self) -> None:
        self._live -= 1
        self._tombstones += 1
        if (
            len(self._queue) >= self.COMPACT_MIN_QUEUE
            and self._tombstones * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones; pop order is unchanged."""
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._tombstones = 0
        self._compactions += 1

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, clock is already at {self._now:.6f}"
            )
        self._seq += 1
        event = _ScheduledEvent(time=time, seq=self._seq, callback=callback, args=args)
        heapq.heappush(self._queue, event)
        self._live += 1
        return EventHandle(event, self)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], None],
        jitter: float = 0.0,
        initial_delay: float | None = None,
    ) -> PeriodicTask:
        """Run ``callback`` every ``interval`` seconds (optionally jittered).

        ``jitter`` is a fraction of the interval: with ``jitter=0.1`` each
        period is drawn uniformly from ``interval * [0.9, 1.1]``. Returns the
        started :class:`PeriodicTask`; call :meth:`PeriodicTask.stop` to end it.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, jitter=jitter)
        return task.start(initial_delay=initial_delay)

    def run(self, until: float) -> None:
        """Process events until the clock reaches ``until`` seconds.

        The clock always ends exactly at ``until`` even if the queue drains
        early, so repeated ``run`` calls compose predictably.
        """
        if until < self._now:
            raise SimulationError(
                f"cannot run until {until:.6f}, clock is already at {self._now:.6f}"
            )
        while self._queue and self._queue[0].time <= until:
            event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._live -= 1
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
        self._now = until

    def run_until_idle(self, max_time: float = 3600.0) -> None:
        """Process events until the queue drains or ``max_time`` is reached.

        Useful in tests; periodic tasks never drain, so most scenarios should
        prefer :meth:`run`.
        """
        while self._queue and self._queue[0].time <= max_time:
            event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._live -= 1
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        step: float = 0.05,
    ) -> bool:
        """Advance time in ``step`` increments until ``predicate()`` is true.

        Returns ``True`` if the predicate became true before ``timeout``
        (absolute deadline of ``now + timeout``), ``False`` otherwise.
        """
        deadline = self._now + timeout
        while self._now < deadline:
            if predicate():
                return True
            self.run(min(self._now + step, deadline))
        return predicate()
