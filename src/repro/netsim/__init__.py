"""Deterministic discrete-event network simulator.

This is the substrate that replaces the paper's physical testbed (laptops,
iPAQs, 802.11 ad hoc radios, firewall-enforced multihop): a virtual clock,
a unit-disk wireless medium, Linux-like nodes with UDP sockets and netfilter
hook chains, node mobility, and a wired Internet cloud with DNS.
"""

from repro.netsim.capture import (
    CapturedFrame,
    Chain,
    NetfilterHooks,
    PacketCapture,
    Verdict,
)
from repro.netsim.energy import EnergyCoefficients, EnergyModel, WAVELAN_2MBPS
from repro.netsim.internet import DnsService, InternetCloud, make_internet_host
from repro.netsim.medium import WirelessMedium
from repro.netsim.mobility import (
    RandomWaypointMobility,
    ReferencePointGroupMobility,
    place_chain,
    place_grid,
    place_random,
)
from repro.netsim.node import Node, Router, StaticRouter, UdpSocket
from repro.netsim.packet import (
    BROADCAST,
    FRAMING_BYTES,
    PORT_AODV,
    PORT_OLSR,
    PORT_SIP,
    PORT_SIPHOC_CTRL,
    PORT_SIPHOC_TUNNEL,
    PORT_SLP,
    Datagram,
    Packet,
    internet_ip,
    is_internet_address,
    is_manet_address,
    manet_ip,
)
from repro.netsim.simulator import EventHandle, PeriodicTask, Simulator
from repro.netsim.stats import SampleSeries, Stats, TrafficCounter

__all__ = [
    "BROADCAST",
    "CapturedFrame",
    "Chain",
    "Datagram",
    "DnsService",
    "EnergyCoefficients",
    "EnergyModel",
    "EventHandle",
    "FRAMING_BYTES",
    "InternetCloud",
    "NetfilterHooks",
    "Node",
    "PORT_AODV",
    "PORT_OLSR",
    "PORT_SIP",
    "PORT_SIPHOC_CTRL",
    "PORT_SIPHOC_TUNNEL",
    "PORT_SLP",
    "Packet",
    "PacketCapture",
    "PeriodicTask",
    "RandomWaypointMobility",
    "ReferencePointGroupMobility",
    "Router",
    "SampleSeries",
    "Simulator",
    "StaticRouter",
    "Stats",
    "TrafficCounter",
    "UdpSocket",
    "Verdict",
    "WAVELAN_2MBPS",
    "WirelessMedium",
    "internet_ip",
    "is_internet_address",
    "is_manet_address",
    "make_internet_host",
    "manet_ip",
    "place_chain",
    "place_grid",
    "place_random",
]
