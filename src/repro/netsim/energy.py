"""Per-node radio energy accounting.

Implements the linear per-packet cost model of Feeney & Nilsson
("Investigating the energy consumption of a wireless network interface in
an ad hoc networking environment", INFOCOM 2001): every operation costs
``m * size + b`` microjoules, with separate coefficients for sending,
receiving addressed traffic, and discarding overheard traffic. Broadcast
receptions are billed to every node in range — the hidden cost that makes
flooding-based discovery schemes expensive on battery-powered handhelds
like the paper's iPAQs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.node import Node
    from repro.netsim.packet import Packet


@dataclass(frozen=True)
class EnergyCoefficients:
    """Linear cost model: cost_uJ = m * size_bytes + b."""

    send_m: float = 1.9
    send_b: float = 454.0
    recv_m: float = 0.5
    recv_b: float = 356.0
    recv_broadcast_m: float = 0.5
    recv_broadcast_b: float = 56.0
    discard_m: float = 0.11  # promiscuous overhear of unicast for others
    discard_b: float = 70.0


#: Feeney & Nilsson's measured coefficients for a 2.4 GHz WaveLAN card.
WAVELAN_2MBPS = EnergyCoefficients()


class EnergyModel:
    """Tracks microjoules spent per node on radio operations."""

    def __init__(self, coefficients: EnergyCoefficients | None = None) -> None:
        self.coefficients = coefficients or WAVELAN_2MBPS
        self._spent_uj: dict[str, float] = defaultdict(float)
        self.total_transmissions = 0

    # -- billing (called by the medium) ---------------------------------------
    def on_send(self, node: "Node", packet: "Packet", attempts: int = 1) -> None:
        c = self.coefficients
        self._spent_uj[node.ip] += attempts * (c.send_m * packet.size + c.send_b)
        self.total_transmissions += attempts

    def on_receive(self, node: "Node", packet: "Packet") -> None:
        c = self.coefficients
        self._spent_uj[node.ip] += c.recv_m * packet.size + c.recv_b

    def on_receive_broadcast(self, node: "Node", packet: "Packet") -> None:
        c = self.coefficients
        self._spent_uj[node.ip] += c.recv_broadcast_m * packet.size + c.recv_broadcast_b

    def on_discard(self, node: "Node", packet: "Packet") -> None:
        c = self.coefficients
        self._spent_uj[node.ip] += c.discard_m * packet.size + c.discard_b

    # -- reporting --------------------------------------------------------------
    def spent_uj(self, node_ip: str) -> float:
        return self._spent_uj[node_ip]

    def spent_joules(self, node_ip: str) -> float:
        return self._spent_uj[node_ip] / 1e6

    def total_joules(self) -> float:
        return sum(self._spent_uj.values()) / 1e6

    def max_node_joules(self) -> float:
        return max(self._spent_uj.values(), default=0.0) / 1e6

    def per_node_joules(self) -> dict[str, float]:
        return {ip: uj / 1e6 for ip, uj in self._spent_uj.items()}
