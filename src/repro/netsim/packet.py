"""IP/UDP packet model.

Every message in the system travels as a UDP datagram inside an IP packet,
mirroring how SIPHoc's real deployment works: AODV and OLSR daemons use their
IANA ports (654 and 698), SIP uses 5060, SLP 427 and RTP uses dynamic ports.
Sizes are computed from the *serialized* payload plus standard framing so
that overhead measurements are honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

from repro.globalstate import registry

BROADCAST = "255.255.255.255"

# Well-known ports used throughout the system.
PORT_SLP = 427
PORT_AODV = 654
PORT_OLSR = 698
PORT_SIP = 5060
PORT_SIPHOC_TUNNEL = 5062
PORT_SIPHOC_CTRL = 5063

# Framing constants (bytes): 802.11 data header + LLC/SNAP, IPv4, UDP.
MAC_HEADER_BYTES = 34
IP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
FRAMING_BYTES = MAC_HEADER_BYTES + IP_HEADER_BYTES + UDP_HEADER_BYTES

DEFAULT_TTL = 64

_packet_ids = registry.counter("netsim.packet.uid", start=1)


@dataclass
class Datagram:
    """A UDP datagram: source/destination ports and raw payload bytes."""

    sport: int
    dport: int
    data: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.data, (bytes, bytearray)):
            raise TypeError(f"datagram payload must be bytes, got {type(self.data)!r}")
        self.data = bytes(self.data)

    @cached_property
    def size(self) -> int:
        return len(self.data) + UDP_HEADER_BYTES


@dataclass
class Packet:
    """An IPv4 packet carrying a UDP datagram.

    ``uid`` identifies the original packet across hops; forwarded copies keep
    the uid, which lets capture tooling correlate multihop transit.
    """

    src: str
    dst: str
    payload: Datagram
    ttl: int = DEFAULT_TTL
    uid: int = field(default_factory=_packet_ids.next)

    @cached_property
    def size(self) -> int:
        """On-air size in bytes, including MAC/IP/UDP framing.

        Cached: payload bytes are immutable, and hook mutation goes through
        :meth:`with_data`, which builds a fresh packet (and a fresh cache).
        """
        return len(self.payload.data) + FRAMING_BYTES

    @property
    def sport(self) -> int:
        return self.payload.sport

    @property
    def dport(self) -> int:
        return self.payload.dport

    @property
    def data(self) -> bytes:
        return self.payload.data

    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST

    def forwarded(self) -> "Packet":
        """Return the next-hop copy of this packet with TTL decremented."""
        clone = replace(self, ttl=self.ttl - 1)
        size = self.__dict__.get("size")
        if size is not None:  # carry the size cache across hops (same payload)
            clone.__dict__["size"] = size
        return clone

    def with_data(self, data: bytes) -> "Packet":
        """Return a copy carrying different payload bytes (hook mutation)."""
        return replace(self, payload=Datagram(self.sport, self.dport, data))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.uid} {self.src}:{self.sport} -> "
            f"{self.dst}:{self.dport}, {self.size}B, ttl={self.ttl})"
        )


def manet_ip(index: int) -> str:
    """Deterministic MANET address for node ``index`` (192.168.0.0/16)."""
    if not 0 <= index < 250 * 250:
        raise ValueError(f"node index out of range: {index}")
    return f"192.168.{index // 250}.{index % 250 + 1}"


def internet_ip(index: int) -> str:
    """Deterministic Internet address for host ``index`` (10.0.0.0/8)."""
    if not 0 <= index < 250 * 250:
        raise ValueError(f"host index out of range: {index}")
    return f"10.0.{index // 250}.{index % 250 + 1}"


def is_manet_address(ip: str) -> bool:
    return ip.startswith("192.168.")


def is_internet_address(ip: str) -> bool:
    return ip.startswith("10.")
