"""Wireless medium model.

A unit-disk radio: every node within ``tx_range`` metres of a sender
receives its transmissions. Per-transmission delay is serialization time at
``bitrate`` plus a fixed MAC/propagation component plus a small random
per-receiver jitter (standing in for 802.11 backoff, and preventing
degenerate simultaneity in flooding protocols). Unicast frames get link-layer
retransmissions, broadcast frames do not — as in real 802.11.

Neighbor lookup is the inner loop of every transmitted frame. By default the
medium maintains a uniform-grid spatial index (cell size = ``tx_range``) plus
a per-node neighbor cache invalidated by a position epoch counter, making
:meth:`neighbors` O(degree) instead of O(N). Node position setters notify the
medium, so mobility models need no special wiring. The brute-force O(N) scan
is kept behind ``use_spatial_index=False`` as a parity reference: both paths
visit in-range nodes in identical (insertion) order and use the same range
predicate, so a seeded simulation produces bit-identical results either way.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, Callable, Protocol

from repro.netsim.capture import CapturedFrame
from repro.netsim.energy import EnergyModel
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator
from repro.netsim.stats import Stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.node import Node

SnifferFn = Callable[[CapturedFrame], None]
LinkFailureFn = Callable[[str, Packet], None]

_Cell = tuple[int, int]


class ChannelModel(Protocol):
    """Per-link loss decision, replacing the uniform ``loss_rate`` knob.

    Implementations (see :mod:`repro.faults.channel`) must draw randomness
    exclusively from the ``rng`` argument — the simulator's seeded RNG — so
    loss sequences are reproduced exactly by a same-seed rerun. One call is
    made per transmission attempt on the directed link (sender, receiver).
    """

    def should_drop(self, sender_ip: str, receiver_ip: str, rng: random.Random) -> bool: ...


class WirelessMedium:
    """Shared broadcast medium connecting all MANET nodes."""

    def __init__(
        self,
        sim: Simulator,
        stats: Stats | None = None,
        tx_range: float = 250.0,
        bitrate: float = 2_000_000.0,
        base_delay: float = 0.0005,
        jitter: float = 0.002,
        loss_rate: float = 0.0,
        mac_retries: int = 3,
        energy: EnergyModel | None = None,
        use_spatial_index: bool = True,
        channel: ChannelModel | None = None,
        batch_delivery: bool = True,
    ) -> None:
        self.sim = sim
        self.stats = stats or Stats()
        self.energy = energy
        self.tx_range = tx_range
        self.bitrate = bitrate
        self.base_delay = base_delay
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.channel = channel
        self.mac_retries = mac_retries
        self.use_spatial_index = use_spatial_index
        self.batch_delivery = batch_delivery
        self._nodes: list["Node"] = []
        self._by_ip: dict[str, "Node"] = {}
        self._sniffers: list[SnifferFn] = []
        # Spatial index state. Keys are id(node): nodes are kept alive by
        # self._nodes while members, so ids cannot be recycled under us.
        self._cell_size = tx_range if tx_range > 0 else 1.0
        self._cells: dict[_Cell, list["Node"]] = {}
        self._node_cell: dict[int, _Cell] = {}
        self._order: dict[int, int] = {}  # membership order, = brute-force scan order
        self._order_seq = 0
        self._position_epoch = 0
        self._neighbor_cache: dict[int, tuple[int, list["Node"]]] = {}
        # Named partitions (fault injection): each blocks every link that
        # crosses between its two groups, in both directions.
        self._partitions: dict[str, tuple[frozenset[str], frozenset[str]]] = {}

    # -- membership ---------------------------------------------------------
    def add_node(self, node: "Node") -> None:
        if node.ip in self._by_ip:
            raise ValueError(f"duplicate MANET address {node.ip}")
        self._nodes.append(node)
        self._by_ip[node.ip] = node
        if node.medium is None:  # direct add_node callers still get move tracking
            node.medium = self
        self._order[id(node)] = self._order_seq
        self._order_seq += 1
        self._grid_insert(node)
        self._position_epoch += 1

    def remove_node(self, node: "Node") -> None:
        self._nodes.remove(node)
        del self._by_ip[node.ip]
        del self._order[id(node)]
        cell = self._node_cell.pop(id(node), None)
        if cell is not None:
            bucket = self._cells[cell]
            bucket.remove(node)
            if not bucket:
                del self._cells[cell]
        self._neighbor_cache.pop(id(node), None)
        self._position_epoch += 1

    @property
    def nodes(self) -> list["Node"]:
        return list(self._nodes)

    def node_by_ip(self, ip: str) -> "Node | None":
        return self._by_ip.get(ip)

    # -- topology -----------------------------------------------------------
    @property
    def position_epoch(self) -> int:
        """Bumped on every membership or position change; invalidates caches."""
        return self._position_epoch

    def distance(self, a: "Node", b: "Node") -> float:
        ax, ay = a.position
        bx, by = b.position
        return math.hypot(ax - bx, ay - by)

    def in_range(self, a: "Node", b: "Node") -> bool:
        return self.distance(a, b) <= self.tx_range

    def neighbors(self, node: "Node") -> list["Node"]:
        """All nodes within ``tx_range`` of ``node``, in membership order.

        On the spatial-index path the returned list is a cached internal
        object — treat it as read-only.
        """
        if not self.use_spatial_index:
            return self._brute_force_neighbors(node)
        self._ensure_grid()
        key = id(node)
        cached = self._neighbor_cache.get(key)
        if cached is not None and cached[0] == self._position_epoch:
            return cached[1]
        result = self._grid_neighbors(node)
        if key in self._order:  # only cache member nodes (stable identity)
            self._neighbor_cache[key] = (self._position_epoch, result)
        return result

    def _brute_force_neighbors(self, node: "Node") -> list["Node"]:
        return [
            other
            for other in self._nodes
            if other is not node and self.in_range(node, other)
        ]

    # -- spatial index ------------------------------------------------------
    def _cell_of(self, position: tuple[float, float]) -> _Cell:
        size = self._cell_size
        return (math.floor(position[0] / size), math.floor(position[1] / size))

    def _grid_insert(self, node: "Node") -> None:
        cell = self._cell_of(node.position)
        self._cells.setdefault(cell, []).append(node)
        self._node_cell[id(node)] = cell

    def _ensure_grid(self) -> None:
        """Rebuild the grid if ``tx_range`` was reconfigured after creation."""
        desired = self.tx_range if self.tx_range > 0 else 1.0
        if desired == self._cell_size:
            return
        self._cell_size = desired
        self._cells = {}
        self._node_cell = {}
        for node in self._nodes:
            self._grid_insert(node)
        self._position_epoch += 1

    def _on_node_moved(self, node: "Node") -> None:
        """Notification from :class:`Node` position setters."""
        key = id(node)
        if key not in self._order:
            return
        self._position_epoch += 1
        cell = self._cell_of(node.position)
        old = self._node_cell[key]
        if old == cell:
            return
        bucket = self._cells[old]
        bucket.remove(node)
        if not bucket:
            del self._cells[old]
        self._cells.setdefault(cell, []).append(node)
        self._node_cell[key] = cell

    def _grid_neighbors(self, node: "Node") -> list["Node"]:
        cx, cy = self._cell_of(node.position)
        cells = self._cells
        in_range = self.in_range
        result: list["Node"] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                bucket = cells.get((cx + dx, cy + dy))
                if not bucket:
                    continue
                for other in bucket:
                    if other is not node and in_range(node, other):
                        result.append(other)
        # Membership order keeps delivery (and thus RNG draw) order identical
        # to the brute-force scan — determinism is bit-for-bit across modes.
        order = self._order
        result.sort(key=lambda n: order[id(n)])
        return result

    # -- partitions (fault injection) ----------------------------------------
    def partition(self, name: str, group_a: frozenset[str], group_b: frozenset[str]) -> None:
        """Block every link crossing between ``group_a`` and ``group_b``.

        Partitioned links behave exactly like out-of-range ones: unicasts
        fail after the full MAC retry sequence (triggering link-failure
        feedback), broadcasts simply do not arrive.
        """
        self._partitions[name] = (frozenset(group_a), frozenset(group_b))

    def heal(self, name: str) -> None:
        """Remove a named partition. Unknown names are a no-op."""
        self._partitions.pop(name, None)

    @property
    def partition_names(self) -> list[str]:
        return sorted(self._partitions)

    def link_blocked(self, a_ip: str, b_ip: str) -> bool:
        """True if any active partition separates the two endpoints."""
        for group_a, group_b in self._partitions.values():
            if (a_ip in group_a and b_ip in group_b) or (
                a_ip in group_b and b_ip in group_a
            ):
                return True
        return False

    # -- capture ------------------------------------------------------------
    def add_sniffer(self, sniffer: SnifferFn) -> None:
        self._sniffers.append(sniffer)

    def remove_sniffer(self, sniffer: SnifferFn) -> None:
        self._sniffers.remove(sniffer)

    def _notify_sniffers(self, frame: CapturedFrame) -> None:
        for sniffer in self._sniffers:
            sniffer(frame)

    # -- transmission -------------------------------------------------------
    def _tx_time(self, packet: Packet) -> float:
        return packet.size * 8.0 / self.bitrate + self.base_delay

    def transmission_time(self, packet: Packet) -> float:
        """Airtime of one frame: serialization plus fixed per-frame overhead.

        Public so bounded TX queues (:class:`repro.netsim.node.InterfaceTxQueue`)
        can hold the interface busy for exactly one frame's airtime; excludes
        the random propagation jitter, which is drawn per delivery.
        """
        return self._tx_time(packet)

    def _lost(self, sender_ip: str, receiver_ip: str) -> bool:
        """One loss draw for one transmission attempt on a directed link."""
        if self.channel is not None:
            return self.channel.should_drop(sender_ip, receiver_ip, self.sim.rng)
        return self.loss_rate > 0 and self.sim.rng.random() < self.loss_rate

    def broadcast(self, sender: "Node", packet: Packet) -> None:
        """Transmit one link-layer broadcast frame from ``sender``.

        Each in-range neighbor independently receives (or loses) the frame.

        Draw-order contract (identical on both delivery paths): neighbors are
        visited in membership order; for each non-partitioned neighbor one
        loss draw is made, and for each surviving neighbor one jitter draw —
        all from the simulator RNG, interleaved exactly as written here. With
        ``batch_delivery`` the surviving receptions are then scheduled as one
        kernel train via :meth:`Simulator.schedule_batch`, which reserves
        sequence numbers in collection order — the same numbers a per-neighbor
        ``schedule`` loop would assign — so traces, Stats, and every
        downstream RNG draw are bit-identical between the two paths.
        """
        self.stats.record_transmission(packet.dport, packet.size)
        sender_ip = sender.ip
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "packet.tx",
                sender_ip,
                uid=packet.uid,
                dst=packet.dst,
                dport=packet.dport,
                size=packet.size,
                mode="broadcast",
            )
        energy = self.energy
        if energy is not None:
            energy.on_send(sender, packet)
        tx_time = self._tx_time(packet)
        # One pass draws loss + jitter for every neighbor; receptions are
        # collected and handed to the kernel in a single batched call.
        deliveries: list[tuple[float, Callable[..., None], tuple]] = []
        append = deliveries.append
        partitions = self._partitions
        channel = self.channel
        loss_rate = self.loss_rate
        rng = self.sim.rng
        rng_random = rng.random
        rng_uniform = rng.uniform
        jitter = self.jitter
        cb_args = (packet, sender_ip)
        for neighbor in self.neighbors(sender):
            if partitions and self.link_blocked(sender_ip, neighbor.ip):
                if tracer is not None:
                    tracer.emit(
                        "packet.drop",
                        sender_ip,
                        uid=packet.uid,
                        cause="partition",
                        peer=neighbor.ip,
                    )
                continue
            if (
                channel.should_drop(sender_ip, neighbor.ip, rng)
                if channel is not None
                else loss_rate > 0 and rng_random() < loss_rate
            ):
                if tracer is not None:
                    tracer.emit(
                        "packet.drop",
                        sender_ip,
                        uid=packet.uid,
                        cause="loss",
                        peer=neighbor.ip,
                    )
                continue
            if energy is not None:
                energy.on_receive_broadcast(neighbor, packet)
            append((tx_time + rng_uniform(0, jitter), neighbor.receive_wireless, cb_args))
        delivered_any = bool(deliveries)
        if deliveries:
            if self.batch_delivery:
                self.sim.schedule_batch(deliveries)
            else:
                schedule = self.sim.schedule
                for delay, receive, args in deliveries:
                    schedule(delay, receive, *args)
        self._notify_sniffers(
            CapturedFrame(
                time=self.sim.now,
                sender_ip=sender.ip,
                receiver_ip="*",
                packet=packet,
                delivered=delivered_any,
            )
        )

    def unicast(
        self,
        sender: "Node",
        next_hop_ip: str,
        packet: Packet,
        on_link_failure: LinkFailureFn | None = None,
    ) -> None:
        """Transmit a unicast frame to a specific link-layer neighbor.

        The frame is retried up to ``mac_retries`` times on loss; if the
        neighbor is out of range or every attempt is lost, the optional
        ``on_link_failure(next_hop_ip, packet)`` callback fires (the 802.11
        TX-failure feedback that reactive routing protocols rely on).
        """
        self.stats.record_transmission(packet.dport, packet.size)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "packet.tx",
                sender.ip,
                uid=packet.uid,
                dst=packet.dst,
                dport=packet.dport,
                size=packet.size,
                mode="unicast",
                next_hop=next_hop_ip,
            )
        receiver = self._by_ip.get(next_hop_ip)
        blocked = self._partitions and self.link_blocked(sender.ip, next_hop_ip)
        # A crashed node (or one with its radio administratively down) has
        # no radio: it sends no MAC ACK, so the sender's retries exhaust
        # exactly as for an out-of-range neighbor.
        reachable = (
            receiver is not None
            and receiver.up
            and receiver.interface_up("wireless")
            and not blocked
            and self.in_range(sender, receiver)
        )
        delivered = False
        attempts = 1
        if reachable:
            for attempt in range(self.mac_retries + 1):
                attempts = attempt + 1
                if not self._lost(sender.ip, next_hop_ip):
                    delivered = True
                    break
        if self.energy is not None:
            self.energy.on_send(sender, packet, attempts=attempts)
            # One neighbor-list lookup covers receiver and bystanders alike
            # (cached on the spatial-index path, not a second full scan).
            for neighbor in self.neighbors(sender):
                if neighbor is receiver:
                    if delivered:
                        self.energy.on_receive(neighbor, packet)
                else:
                    # Promiscuous overhear-and-discard cost for bystanders.
                    self.energy.on_discard(neighbor, packet)
        self._notify_sniffers(
            CapturedFrame(
                time=self.sim.now,
                sender_ip=sender.ip,
                receiver_ip=next_hop_ip,
                packet=packet,
                delivered=delivered,
            )
        )
        if not delivered:
            self.stats.increment("medium.unicast_failures")
            if tracer is not None:
                if blocked:
                    cause = "partition"
                elif not reachable:
                    cause = "unreachable"
                else:
                    cause = "retries_exhausted"
                tracer.emit(
                    "packet.drop",
                    sender.ip,
                    uid=packet.uid,
                    cause=cause,
                    peer=next_hop_ip,
                    attempts=attempts,
                )
            if on_link_failure is not None:
                # Failure is detected after the full retry sequence.
                delay = attempts * self._tx_time(packet)
                self.sim.schedule(delay, on_link_failure, next_hop_ip, packet)
            return
        delay = attempts * self._tx_time(packet) + self.sim.rng.uniform(0, self.jitter)
        assert receiver is not None
        self.sim.schedule(delay, receiver.receive_wireless, packet, sender.ip)
