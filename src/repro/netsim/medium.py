"""Wireless medium model.

A unit-disk radio: every node within ``tx_range`` metres of a sender
receives its transmissions. Per-transmission delay is serialization time at
``bitrate`` plus a fixed MAC/propagation component plus a small random
per-receiver jitter (standing in for 802.11 backoff, and preventing
degenerate simultaneity in flooding protocols). Unicast frames get link-layer
retransmissions, broadcast frames do not — as in real 802.11.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

from repro.netsim.capture import CapturedFrame
from repro.netsim.energy import EnergyModel
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator
from repro.netsim.stats import Stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.node import Node

SnifferFn = Callable[[CapturedFrame], None]
LinkFailureFn = Callable[[str, Packet], None]


class WirelessMedium:
    """Shared broadcast medium connecting all MANET nodes."""

    def __init__(
        self,
        sim: Simulator,
        stats: Stats | None = None,
        tx_range: float = 250.0,
        bitrate: float = 2_000_000.0,
        base_delay: float = 0.0005,
        jitter: float = 0.002,
        loss_rate: float = 0.0,
        mac_retries: int = 3,
        energy: EnergyModel | None = None,
    ) -> None:
        self.sim = sim
        self.stats = stats or Stats()
        self.energy = energy
        self.tx_range = tx_range
        self.bitrate = bitrate
        self.base_delay = base_delay
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.mac_retries = mac_retries
        self._nodes: list["Node"] = []
        self._by_ip: dict[str, "Node"] = {}
        self._sniffers: list[SnifferFn] = []

    # -- membership ---------------------------------------------------------
    def add_node(self, node: "Node") -> None:
        if node.ip in self._by_ip:
            raise ValueError(f"duplicate MANET address {node.ip}")
        self._nodes.append(node)
        self._by_ip[node.ip] = node

    def remove_node(self, node: "Node") -> None:
        self._nodes.remove(node)
        del self._by_ip[node.ip]

    @property
    def nodes(self) -> list["Node"]:
        return list(self._nodes)

    def node_by_ip(self, ip: str) -> "Node | None":
        return self._by_ip.get(ip)

    # -- topology -----------------------------------------------------------
    def distance(self, a: "Node", b: "Node") -> float:
        return math.hypot(a.position[0] - b.position[0], a.position[1] - b.position[1])

    def in_range(self, a: "Node", b: "Node") -> bool:
        return self.distance(a, b) <= self.tx_range

    def neighbors(self, node: "Node") -> list["Node"]:
        return [
            other
            for other in self._nodes
            if other is not node and self.in_range(node, other)
        ]

    # -- capture ------------------------------------------------------------
    def add_sniffer(self, sniffer: SnifferFn) -> None:
        self._sniffers.append(sniffer)

    def remove_sniffer(self, sniffer: SnifferFn) -> None:
        self._sniffers.remove(sniffer)

    def _notify_sniffers(self, frame: CapturedFrame) -> None:
        for sniffer in self._sniffers:
            sniffer(frame)

    # -- transmission -------------------------------------------------------
    def _tx_time(self, packet: Packet) -> float:
        return packet.size * 8.0 / self.bitrate + self.base_delay

    def _lost(self) -> bool:
        return self.loss_rate > 0 and self.sim.rng.random() < self.loss_rate

    def broadcast(self, sender: "Node", packet: Packet) -> None:
        """Transmit one link-layer broadcast frame from ``sender``.

        Each in-range neighbor independently receives (or loses) the frame.
        """
        self.stats.record_transmission(packet.dport, packet.size)
        if self.energy is not None:
            self.energy.on_send(sender, packet)
        tx_time = self._tx_time(packet)
        delivered_any = False
        for neighbor in self.neighbors(sender):
            if self._lost():
                continue
            delivered_any = True
            if self.energy is not None:
                self.energy.on_receive_broadcast(neighbor, packet)
            delay = tx_time + self.sim.rng.uniform(0, self.jitter)
            self.sim.schedule(delay, neighbor.receive_wireless, packet, sender.ip)
        self._notify_sniffers(
            CapturedFrame(
                time=self.sim.now,
                sender_ip=sender.ip,
                receiver_ip="*",
                packet=packet,
                delivered=delivered_any,
            )
        )

    def unicast(
        self,
        sender: "Node",
        next_hop_ip: str,
        packet: Packet,
        on_link_failure: LinkFailureFn | None = None,
    ) -> None:
        """Transmit a unicast frame to a specific link-layer neighbor.

        The frame is retried up to ``mac_retries`` times on loss; if the
        neighbor is out of range or every attempt is lost, the optional
        ``on_link_failure(next_hop_ip, packet)`` callback fires (the 802.11
        TX-failure feedback that reactive routing protocols rely on).
        """
        self.stats.record_transmission(packet.dport, packet.size)
        receiver = self._by_ip.get(next_hop_ip)
        reachable = receiver is not None and self.in_range(sender, receiver)
        delivered = False
        attempts = 1
        if reachable:
            for attempt in range(self.mac_retries + 1):
                attempts = attempt + 1
                if not self._lost():
                    delivered = True
                    break
        if self.energy is not None:
            self.energy.on_send(sender, packet, attempts=attempts)
            for neighbor in self.neighbors(sender):
                if neighbor is receiver:
                    if delivered:
                        self.energy.on_receive(neighbor, packet)
                else:
                    # Promiscuous overhear-and-discard cost for bystanders.
                    self.energy.on_discard(neighbor, packet)
        self._notify_sniffers(
            CapturedFrame(
                time=self.sim.now,
                sender_ip=sender.ip,
                receiver_ip=next_hop_ip,
                packet=packet,
                delivered=delivered,
            )
        )
        if not delivered:
            self.stats.increment("medium.unicast_failures")
            if on_link_failure is not None:
                # Failure is detected after the full retry sequence.
                delay = attempts * self._tx_time(packet)
                self.sim.schedule(delay, on_link_failure, next_hop_ip, packet)
            return
        delay = attempts * self._tx_time(packet) + self.sim.rng.uniform(0, self.jitter)
        assert receiver is not None
        self.sim.schedule(delay, receiver.receive_wireless, packet, sender.ip)
