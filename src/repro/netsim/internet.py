"""The wired Internet substrate.

The paper's gateway scenario assumes "the Internet" on the far side of a
MANET gateway: SIP providers with registrars/proxies reachable by domain
name. :class:`InternetCloud` is a star network with fixed latency that
routes packets between attached addresses, plus a tiny DNS. Gateways attach
*virtual* endpoints for the tunnel-client addresses they serve, so Internet
hosts can reach MANET nodes transparently — the property §3.2 demonstrates
with calls from the Internet into the MANET.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.errors import NetworkError
from repro.netsim.node import Node
from repro.netsim.packet import Packet, internet_ip
from repro.netsim.simulator import Simulator
from repro.netsim.stats import Stats

DeliverFn = Callable[[Packet], None]


class DnsService:
    """Minimal DNS: domain name -> IP, with SIP-style lookup helpers."""

    def __init__(self) -> None:
        self._records: dict[str, str] = {}

    def register(self, domain: str, ip: str) -> None:
        self._records[domain.lower()] = ip

    def unregister(self, domain: str) -> None:
        self._records.pop(domain.lower(), None)

    def resolve(self, domain: str) -> str | None:
        return self._records.get(domain.lower())

    def domains(self) -> list[str]:
        return sorted(self._records)


class InternetCloud:
    """Fixed-infrastructure network connecting wired hosts and gateways."""

    def __init__(
        self,
        sim: Simulator,
        stats: Stats | None = None,
        latency: float = 0.02,
        jitter: float = 0.005,
        loss_rate: float = 0.0,
    ) -> None:
        self.sim = sim
        self.stats = stats or Stats()
        self.latency = latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self.dns = DnsService()
        self._endpoints: dict[str, DeliverFn] = {}
        self._ip_counter = itertools.count(1)

    # -- attachment -----------------------------------------------------------
    def allocate_ip(self) -> str:
        return internet_ip(next(self._ip_counter))

    def attach(self, node: Node, ip: str | None = None) -> str:
        """Give ``node`` a wired interface and a default route via this cloud."""
        wired_ip = ip or self.allocate_ip()
        if wired_ip in self._endpoints:
            raise NetworkError(f"internet address {wired_ip} already attached")
        node.wired_ip = wired_ip
        node.add_interface("wired")
        self._endpoints[wired_ip] = node.receive_wired
        node.set_default_route("wired", self.send, priority=0)
        return wired_ip

    def detach(self, node: Node) -> None:
        if node.wired_ip and node.wired_ip in self._endpoints:
            del self._endpoints[node.wired_ip]
        node.clear_default_route("wired")
        node.wired_ip = None
        node.interfaces.pop("wired", None)

    def attach_endpoint(self, ip: str, deliver: DeliverFn) -> None:
        """Attach a virtual endpoint (e.g. a tunnel-client address at a gateway)."""
        if ip in self._endpoints:
            raise NetworkError(f"internet address {ip} already attached")
        self._endpoints[ip] = deliver

    def detach_endpoint(self, ip: str) -> None:
        self._endpoints.pop(ip, None)

    def is_attached(self, ip: str) -> bool:
        return ip in self._endpoints

    # -- forwarding -------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Deliver ``packet`` to its destination address after cloud latency."""
        self.stats.increment("internet.packets")
        deliver = self._endpoints.get(packet.dst)
        if deliver is None:
            self.stats.increment("internet.unroutable")
            return
        if self.loss_rate > 0 and self.sim.rng.random() < self.loss_rate:
            self.stats.increment("internet.lost")
            return
        delay = self.latency + self.sim.rng.uniform(0, self.jitter)
        self.sim.schedule(delay, deliver, packet)


def make_internet_host(
    sim: Simulator,
    cloud: InternetCloud,
    hostname: str,
    stats: Stats | None = None,
    node_id: int | None = None,
) -> Node:
    """Create a wired-only host attached to the cloud (no MANET interface)."""
    host = Node(
        sim,
        node_id=node_id if node_id is not None else -1,
        ip=None,
        stats=stats or cloud.stats,
        hostname=hostname,
    )
    cloud.attach(host)
    return host
