"""Network node: IP forwarding, UDP transport, netfilter hooks, interfaces.

A node mirrors the parts of a Linux host that SIPHoc relies on: a wireless
interface on the MANET, optional wired attachment to the Internet cloud,
optional tunnel interface (installed by the Connection Provider), a small
policy routing table (MANET subnet via the ad hoc routing daemon, default
route via wired or tunnel), a UDP socket table and netfilter-style hook
chains for packet interception.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Protocol

from repro.errors import PortInUseError
from repro.netsim.capture import Chain, NetfilterHooks
from repro.netsim.packet import (
    BROADCAST,
    DEFAULT_TTL,
    Datagram,
    Packet,
    is_manet_address,
)
from repro.netsim.simulator import Simulator
from repro.netsim.stats import Stats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.medium import WirelessMedium

DatagramHandler = Callable[[bytes, str, int], None]
GatewaySendFn = Callable[[Packet], None]

EPHEMERAL_PORT_BASE = 49152


class Router(Protocol):
    """Interface the IP layer expects from a MANET routing protocol.

    ``dispatch`` takes full responsibility for the packet: deliver it over
    the next hop, buffer it pending route discovery, or drop it.
    """

    def dispatch(self, packet: Packet) -> None: ...


class UdpSocket:
    """A bound UDP socket on a node."""

    def __init__(self, node: "Node", port: int, handler: DatagramHandler) -> None:
        self.node = node
        self.port = port
        self.handler = handler
        self.closed = False

    def send(self, dst_ip: str, dport: int, data: bytes, ttl: int = DEFAULT_TTL) -> None:
        if self.closed:
            raise OSError(f"socket on port {self.port} is closed")
        self.node.send_udp(dst_ip, self.port, dport, data, ttl=ttl)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.node._release_port(self.port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UdpSocket({self.node.ip}:{self.port})"


class _DefaultRoute:
    __slots__ = ("priority", "name", "send")

    def __init__(self, priority: int, name: str, send: GatewaySendFn) -> None:
        self.priority = priority
        self.name = name
        self.send = send


class Interface:
    """Administrative state of one attachment point (§5k).

    Every node with a MANET address gets a ``"wireless"`` interface at
    construction; ``InternetCloud.attach`` adds a ``"wired"`` one. ``up``
    is *administrative* state, independent of ``Node.up`` (host power): a
    node can be running with its radio off. The optional bounded TX queue
    (§5f) hangs off the interface whose airtime it serializes.
    """

    __slots__ = ("name", "up", "tx_queue")

    def __init__(self, name: str) -> None:
        self.name = name
        self.up = True
        self.tx_queue: "InterfaceTxQueue | None" = None


class InterfaceTxQueue:
    """Bounded per-node wireless TX queue with pluggable drop policies (§5f).

    Opt-in: nodes ship without one and hand frames straight to the medium,
    which keeps every existing scenario bit-identical. When installed (via
    :meth:`Node.configure_tx_queue`), the interface transmits at most one
    frame per airtime slot (``medium.transmission_time``); frames arriving
    while the interface is busy wait in a bounded FIFO. At capacity the
    configured policy decides what is shed:

    * ``"tail-drop"`` — the arriving frame is dropped;
    * ``"oldest-first"`` — the head of the queue is dropped to make room
      (favors fresh traffic, e.g. retransmitted SIP requests over stale RTP).

    Emits ``queue.enqueue`` / ``queue.drop`` traces, plus one
    ``queue.high_watermark`` per upward crossing of the watermark (re-armed
    once the queue drains back below it). Everything is driven by the
    simulator clock; there is no randomness here.
    """

    POLICIES = ("tail-drop", "oldest-first")

    def __init__(
        self,
        node: "Node",
        capacity: int,
        policy: str = "tail-drop",
        high_watermark: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"TX queue capacity must be >= 1, got {capacity}")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown TX queue policy {policy!r} (want one of {self.POLICIES})")
        self.node = node
        self.sim = node.sim
        self.capacity = capacity
        self.policy = policy
        self.high_watermark = (
            high_watermark if high_watermark is not None else max(1, (capacity * 3) // 4)
        )
        # Capacity is enforced by submit(): a maxlen deque would shed frames
        # silently, and the drop policy needs to trace what it shed.
        self._frames: deque = deque()  # lint: disable=OVR001
        self._busy = False
        self._above_watermark = False
        self.enqueued = 0
        self.dropped = 0
        self.transmitted = 0
        self.peak_depth = 0

    @property
    def depth(self) -> int:
        """Frames currently waiting (excludes the one on the air)."""
        return len(self._frames)

    def submit(self, next_hop_ip: str | None, packet: Packet, on_link_failure=None) -> None:
        """Hand one frame to the interface (``next_hop_ip=None`` = broadcast)."""
        if not self._busy:
            self._start_transmission(next_hop_ip, packet, on_link_failure)
            return
        if len(self._frames) >= self.capacity:
            if self.policy == "oldest-first":
                victim = self._frames.popleft()
                self._shed(victim[1])
                self._enqueue(next_hop_ip, packet, on_link_failure)
            else:
                self._shed(packet)
            return
        self._enqueue(next_hop_ip, packet, on_link_failure)

    def clear(self) -> None:
        """Forget all queued frames (node crash / interface reset)."""
        self._frames.clear()
        self._busy = False
        self._above_watermark = False

    def kick(self) -> None:
        """Resume draining after an interface comes back up."""
        if not self._busy and self._frames and self.node.up and self.node.medium is not None:
            self._start_transmission(*self._frames.popleft())

    # -- internals ----------------------------------------------------------
    def _enqueue(self, next_hop_ip: str | None, packet: Packet, on_link_failure) -> None:
        self._frames.append((next_hop_ip, packet, on_link_failure))
        self.enqueued += 1
        self.node.stats.increment("txqueue.enqueued")
        depth = len(self._frames)
        if depth > self.peak_depth:
            self.peak_depth = depth
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("queue.enqueue", self.node.ip, uid=packet.uid, depth=depth)
        if depth >= self.high_watermark and not self._above_watermark:
            self._above_watermark = True
            self.node.stats.increment("txqueue.high_watermarks")
            if tracer is not None:
                tracer.emit(
                    "queue.high_watermark", self.node.ip,
                    depth=depth, capacity=self.capacity,
                )

    def _shed(self, packet: Packet) -> None:
        self.dropped += 1
        self.node.stats.increment("txqueue.drops")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "queue.drop", self.node.ip,
                uid=packet.uid, policy=self.policy, capacity=self.capacity,
            )

    def _start_transmission(self, next_hop_ip: str | None, packet: Packet, on_link_failure) -> None:
        medium = self.node.medium
        if medium is None:
            return
        self._busy = True
        self.transmitted += 1
        if next_hop_ip is None:
            medium.broadcast(self.node, packet)
        else:
            medium.unicast(self.node, next_hop_ip, packet, on_link_failure)
        self.sim.schedule(medium.transmission_time(packet), self._drain)

    def _drain(self) -> None:
        self._busy = False
        if len(self._frames) < self.high_watermark:
            self._above_watermark = False
        if (
            self._frames
            and self.node.up
            and self.node.medium is not None
            and self.node.interface_up("wireless")
        ):
            self._start_transmission(*self._frames.popleft())


class Node:
    """A host in the simulated network.

    ``ip`` is the MANET (wireless) address; pass ``None`` for pure Internet
    hosts. A wired address is assigned by ``InternetCloud.attach``; tunnel
    addresses are added by the Connection Provider via ``add_local_address``.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        ip: str | None,
        position: tuple[float, float] = (0.0, 0.0),
        stats: Stats | None = None,
        hostname: str | None = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.ip = ip or ""
        self._position = position
        self.stats = stats or Stats()
        self.hostname = hostname or (f"node-{node_id}")
        self.medium: "WirelessMedium | None" = None
        self.interfaces: dict[str, Interface] = {}
        if self.ip:
            self.add_interface("wireless")
        # Observers of administrative interface flaps: ``fn(name, up)``.
        self.on_interface_change: list[Callable[[str, bool], None]] = []
        self.router: Router | None = None
        self.hooks = NetfilterHooks()
        self.wired_ip: str | None = None
        self._sockets: dict[int, UdpSocket] = {}
        self._extra_addresses: set[str] = set()
        self._default_routes: list[_DefaultRoute] = []
        self._next_ephemeral = EPHEMERAL_PORT_BASE
        self.up = True  # set False to crash the node (failure injection)

    # -- position -------------------------------------------------------------
    @property
    def position(self) -> tuple[float, float]:
        return self._position

    @position.setter
    def position(self, value: tuple[float, float]) -> None:
        """Move the node, bumping the medium's position epoch (cache invalidation)."""
        self._position = value
        medium = self.medium
        if medium is not None:
            medium._on_node_moved(self)

    # -- attachment ----------------------------------------------------------
    def join_medium(self, medium: "WirelessMedium") -> None:
        self.medium = medium
        medium.add_node(self)

    def set_router(self, router: Router) -> None:
        self.router = router

    # -- interfaces ----------------------------------------------------------
    def add_interface(self, name: str) -> Interface:
        """Create (or return) the named interface; new interfaces start up."""
        interface = self.interfaces.get(name)
        if interface is None:
            interface = Interface(name)
            self.interfaces[name] = interface
        return interface

    def interface_up(self, name: str) -> bool:
        """Administrative state of an interface (unknown names count as up).

        Permissive on purpose: hosts predating the multihoming work (tests,
        wired-only helpers) have no interface objects and must behave as
        they always did.
        """
        interface = self.interfaces.get(name)
        return interface is None or interface.up

    def set_interface_up(self, name: str, up: bool) -> None:
        """Flip an interface's administrative state, notifying observers."""
        interface = self.add_interface(name)
        if interface.up == up:
            return
        interface.up = up
        self.stats.increment(f"iface.{'up' if up else 'down'}")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "iface.up" if up else "iface.down",
                self.ip or self.wired_ip or "",
                iface=name,
            )
        if not up and interface.tx_queue is not None:
            # Radio off sheds anything still waiting for airtime.
            interface.tx_queue.clear()
        if up and interface.tx_queue is not None:
            interface.tx_queue.kick()
        for observer in list(self.on_interface_change):
            observer(name, up)

    @property
    def tx_queue(self) -> InterfaceTxQueue | None:
        """The wireless interface's bounded TX queue (§5f), if configured."""
        interface = self.interfaces.get("wireless")
        return interface.tx_queue if interface is not None else None

    @tx_queue.setter
    def tx_queue(self, queue: InterfaceTxQueue | None) -> None:
        self.add_interface("wireless").tx_queue = queue

    def configure_tx_queue(
        self,
        capacity: int | None,
        policy: str = "tail-drop",
        high_watermark: int | None = None,
    ) -> None:
        """Install a bounded interface TX queue (``capacity=None`` removes it)."""
        if capacity is None:
            self.tx_queue = None
        else:
            self.tx_queue = InterfaceTxQueue(self, capacity, policy, high_watermark)

    # -- failure injection ----------------------------------------------------
    def crash(self) -> None:
        """Abrupt host failure: interfaces stay placed, transport state is lost.

        Marks the node down and forgets every socket, default route, extra
        address, hook chain and routing attachment — exactly what a power
        loss does. Component objects still holding a socket see it as closed.
        A subsequently rebuilt stack can re-bind all well-known ports.
        """
        self.up = False
        for socket in list(self._sockets.values()):
            socket.closed = True
        self._sockets.clear()
        self._default_routes.clear()
        self._extra_addresses.clear()
        self._next_ephemeral = EPHEMERAL_PORT_BASE
        self.router = None
        self.hooks = NetfilterHooks()
        self.on_interface_change.clear()
        for interface in self.interfaces.values():
            interface.up = True  # a power cycle resets administrative state
            if interface.tx_queue is not None:
                interface.tx_queue.clear()

    def restart(self) -> None:
        """Power the node back on (empty-state boot; see :meth:`crash`)."""
        self.up = True

    # -- addressing ----------------------------------------------------------
    @property
    def local_addresses(self) -> set[str]:
        addrs = set(self._extra_addresses)
        if self.ip:
            addrs.add(self.ip)
        if self.wired_ip:
            addrs.add(self.wired_ip)
        return addrs

    def add_local_address(self, ip: str) -> None:
        self._extra_addresses.add(ip)

    def remove_local_address(self, ip: str) -> None:
        self._extra_addresses.discard(ip)

    def is_local_address(self, ip: str) -> bool:
        return ip == "127.0.0.1" or ip in self.local_addresses

    # -- default routes (wired / tunnel) ---------------------------------------
    def set_default_route(self, name: str, send: GatewaySendFn, priority: int = 10) -> None:
        """Install (or replace) a named default route; lower priority wins."""
        self.clear_default_route(name)
        self._default_routes.append(_DefaultRoute(priority, name, send))
        self._default_routes.sort(key=lambda route: route.priority)

    def clear_default_route(self, name: str) -> None:
        self._default_routes = [r for r in self._default_routes if r.name != name]

    def has_default_route(self) -> bool:
        return bool(self._default_routes)

    def default_route_names(self) -> list[str]:
        return [route.name for route in self._default_routes]

    # -- transport -------------------------------------------------------------
    def bind(self, port: int, handler: DatagramHandler) -> UdpSocket:
        """Bind ``handler(data, src_ip, src_port)`` to a UDP port."""
        if port in self._sockets:
            raise PortInUseError(port)
        socket = UdpSocket(self, port, handler)
        self._sockets[port] = socket
        return socket

    def bind_ephemeral(self, handler: DatagramHandler) -> UdpSocket:
        """Bind to the next free ephemeral port (>= 49152)."""
        while self._next_ephemeral in self._sockets:
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return self.bind(port, handler)

    def _release_port(self, port: int) -> None:
        self._sockets.pop(port, None)

    def send_udp(
        self,
        dst_ip: str,
        sport: int,
        dport: int,
        data: bytes,
        ttl: int = DEFAULT_TTL,
    ) -> None:
        """Originate a UDP datagram from this node."""
        if not self.up:
            return
        src = self._source_address()
        packet = Packet(src=src, dst=dst_ip, payload=Datagram(sport, dport, data), ttl=ttl)
        mangled = self.hooks.run(Chain.OUTPUT, packet)
        if mangled is None:
            return
        self.route_packet(mangled)

    def _source_address(self) -> str:
        """Preferred source address given current interface state.

        Matches the legacy ``ip or wired_ip`` order while every interface
        is up; a multihomed node with its radio down sources from the
        wired address so replies come back over the surviving uplink.
        """
        if self.ip and self.interface_up("wireless"):
            return self.ip
        if self.wired_ip and self.interface_up("wired"):
            return self.wired_ip
        return self.ip or self.wired_ip or "0.0.0.0"

    # -- IP layer ----------------------------------------------------------------
    def route_packet(self, packet: Packet) -> None:
        """Forwarding decision for a packet originated by or transiting this node."""
        if not self.up:
            return
        if packet.dst == BROADCAST:
            if self.medium is not None:
                self._wireless_tx(None, packet)
            return
        if self.is_local_address(packet.dst):
            self._deliver(packet)
            return
        tracer = self.sim.tracer
        if packet.ttl <= 0:
            self.stats.increment("ip.ttl_expired")
            if tracer is not None:
                tracer.emit(
                    "packet.drop", self.ip, uid=packet.uid, cause="ttl_expired",
                    dst=packet.dst,
                )
            return
        if is_manet_address(packet.dst) and self.ip:
            if self.router is not None:
                self.router.dispatch(packet)
            else:
                self.stats.increment("ip.no_route")
                if tracer is not None:
                    tracer.emit(
                        "packet.drop", self.ip, uid=packet.uid, cause="no_route",
                        dst=packet.dst,
                    )
            return
        for route in self._default_routes:
            # A default route is only usable while its interface is up;
            # routes with no matching interface object ("tunnel") always are.
            if self.interface_up(route.name):
                route.send(packet)
                return
        cause = "iface_down" if self._default_routes else "no_route"
        self.stats.increment("ip.no_route")
        if tracer is not None:
            tracer.emit(
                "packet.drop", self.ip, uid=packet.uid, cause=cause,
                dst=packet.dst,
            )

    def link_send(self, next_hop_ip: str, packet: Packet, on_link_failure=None) -> None:
        """Transmit one wireless hop (used by routing protocols)."""
        if not self.up or self.medium is None:
            return
        hop = None if next_hop_ip == BROADCAST else next_hop_ip
        self._wireless_tx(hop, packet, on_link_failure)

    def _wireless_tx(
        self, next_hop_ip: str | None, packet: Packet, on_link_failure=None
    ) -> None:
        """Every wireless send funnels through here (``None`` = broadcast)."""
        if self.medium is None:
            return
        if not self.interface_up("wireless"):
            self.stats.increment("iface.tx_down")
            return
        queue = self.tx_queue
        if queue is None:
            if next_hop_ip is None:
                self.medium.broadcast(self, packet)
            else:
                self.medium.unicast(self, next_hop_ip, packet, on_link_failure)
            return
        queue.submit(next_hop_ip, packet, on_link_failure)

    # -- receive paths -------------------------------------------------------------
    def receive_wireless(self, packet: Packet, from_ip: str) -> None:
        """Entry point for frames delivered by the wireless medium."""
        if not self.up or not self.interface_up("wireless"):
            return
        if packet.dst == BROADCAST or self.is_local_address(packet.dst):
            mangled = self.hooks.run(Chain.INPUT, packet)
            if mangled is None:
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.emit(
                        "packet.drop", self.ip, uid=packet.uid, cause="hook_drop",
                    )
                return
            self._deliver(mangled, from_ip)
            return
        # We were the link-layer next hop of a transit packet: forward it.
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "packet.forward", self.ip, uid=packet.uid, dst=packet.dst,
                ttl=packet.ttl - 1,
            )
        self.route_packet(packet.forwarded())

    def receive_wired(self, packet: Packet) -> None:
        """Entry point for packets delivered by the Internet cloud."""
        if not self.up or not self.interface_up("wired"):
            return
        if self.is_local_address(packet.dst):
            mangled = self.hooks.run(Chain.INPUT, packet)
            if mangled is None:
                return
            self._deliver(mangled)
            return
        self.route_packet(packet.forwarded())

    def _deliver(self, packet: Packet, from_ip: str | None = None) -> None:
        socket = self._sockets.get(packet.dport)
        tracer = self.sim.tracer
        if socket is None or socket.closed:
            self.stats.increment("udp.port_unreachable")
            if tracer is not None:
                tracer.emit(
                    "packet.drop", self.ip or self.wired_ip or "",
                    uid=packet.uid, cause="port_unreachable", dport=packet.dport,
                )
            return
        if tracer is not None:
            tracer.emit(
                "packet.rx", self.ip or self.wired_ip or "",
                uid=packet.uid, src=packet.src, dport=packet.dport,
            )
        socket.handler(packet.data, packet.src, packet.sport)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.hostname}, ip={self.ip or self.wired_ip})"


class StaticRouter:
    """A fixed next-hop table; handy for tests and wired-only topologies."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.table: dict[str, str] = {}

    def add_route(self, dst_ip: str, next_hop_ip: str) -> None:
        self.table[dst_ip] = next_hop_ip

    def dispatch(self, packet: Packet) -> None:
        next_hop = self.table.get(packet.dst)
        if next_hop is None:
            self.node.stats.increment("ip.no_route")
            return
        self.node.link_send(next_hop, packet)
