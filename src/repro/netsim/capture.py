"""Packet interception and capture.

Two facilities live here:

* :class:`NetfilterHooks` — the in-node equivalent of the Linux netfilter
  QUEUE target used by SIPHoc via ``libipq``. MANET SLP registers hooks that
  match routing-daemon traffic (UDP ports 654/698) and may *rewrite* packets
  in flight to piggyback service information, without the routing daemon
  ever knowing. This preserves the architectural seam of the paper exactly.

* :class:`PacketCapture` — a promiscuous sniffer attached to the wireless
  medium (our Wireshark, used to regenerate Figure 5 and to account control
  overhead).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.netsim.packet import Packet


class Verdict(enum.Enum):
    """Outcome of a netfilter hook, mirroring libipq verdicts."""

    ACCEPT = "accept"
    DROP = "drop"


class Chain(enum.Enum):
    """Hook chains: OUTPUT sees locally generated packets, INPUT sees
    packets addressed to (or broadcast at) this node before delivery."""

    OUTPUT = "output"
    INPUT = "input"


HookFn = Callable[[Packet], tuple[Verdict, Packet]]


@dataclass
class _Hook:
    chain: Chain
    ports: frozenset[int]
    fn: HookFn
    name: str


class NetfilterHooks:
    """Per-node packet mangling chains (the libipq substitute).

    A hook receives the packet and returns ``(verdict, packet)``; returning a
    different packet object rewrites the traffic. Hooks run in registration
    order; a DROP verdict short-circuits the chain.
    """

    def __init__(self) -> None:
        self._hooks: list[_Hook] = []

    def register(
        self,
        chain: Chain,
        ports: Iterable[int],
        fn: HookFn,
        name: str = "",
    ) -> _Hook:
        hook = _Hook(chain=chain, ports=frozenset(ports), fn=fn, name=name)
        self._hooks.append(hook)
        return hook

    def unregister(self, hook: _Hook) -> None:
        self._hooks.remove(hook)

    def run(self, chain: Chain, packet: Packet) -> Packet | None:
        """Run ``packet`` through ``chain``; None means the packet was dropped."""
        current = packet
        for hook in self._hooks:
            if hook.chain is not chain:
                continue
            if current.dport not in hook.ports:
                continue
            verdict, current = hook.fn(current)
            if verdict is Verdict.DROP:
                return None
        return current


@dataclass
class CapturedFrame:
    """One on-air transmission observed by a sniffer."""

    time: float
    sender_ip: str
    receiver_ip: str  # link-layer receiver ("*" for broadcast frames)
    packet: Packet
    delivered: bool

    @property
    def size(self) -> int:
        return self.packet.size


class PacketCapture:
    """Promiscuous capture of wireless transmissions (our Wireshark).

    Attach with ``medium.add_sniffer(capture.on_frame)``. ``port_filter``
    restricts which frames are kept, e.g. ``{654}`` for AODV only.
    """

    def __init__(
        self,
        port_filter: Iterable[int] | None = None,
        max_frames: int | None = None,
    ) -> None:
        self.frames: list[CapturedFrame] = []
        self._port_filter = frozenset(port_filter) if port_filter is not None else None
        self._max_frames = max_frames

    def on_frame(self, frame: CapturedFrame) -> None:
        if self._port_filter is not None and frame.packet.dport not in self._port_filter:
            return
        if self._max_frames is not None and len(self.frames) >= self._max_frames:
            return
        self.frames.append(frame)

    def clear(self) -> None:
        self.frames.clear()

    def __len__(self) -> int:
        return len(self.frames)

    def filter(
        self,
        dport: int | None = None,
        sender_ip: str | None = None,
        predicate: Callable[[CapturedFrame], bool] | None = None,
    ) -> list[CapturedFrame]:
        """Return captured frames matching all given criteria."""
        out = []
        for frame in self.frames:
            if dport is not None and frame.packet.dport != dport:
                continue
            if sender_ip is not None and frame.sender_ip != sender_ip:
                continue
            if predicate is not None and not predicate(frame):
                continue
            out.append(frame)
        return out
