"""Measurement infrastructure: counters, byte accounting and samples.

One :class:`Stats` object per simulation collects everything the experiment
harness needs: per-port on-air traffic (control overhead), arbitrary named
counters, and latency samples (e.g. call setup delays).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from repro.netsim.packet import PORT_AODV, PORT_OLSR, PORT_SIP, PORT_SLP


@dataclass
class TrafficCounter:
    """Packets and bytes transmitted for one traffic class."""

    packets: int = 0
    bytes: int = 0

    def add(self, size: int) -> None:
        self.packets += 1
        self.bytes += size


@dataclass
class SampleSeries:
    """A collection of numeric samples with summary statistics."""

    values: list[float] = field(default_factory=list)
    # Sorted-view cache for percentile(): values only ever grows through
    # add(), so a cache keyed by length is sufficient to detect staleness.
    _sorted: list[float] = field(default_factory=list, repr=False, compare=False)

    def add(self, value: float) -> None:
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else math.nan

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else math.nan

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else math.nan

    @property
    def stddev(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1))

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile, ``pct`` in [0, 100].

        The sorted view is cached and reused while no new samples arrive,
        so querying several percentiles of the same series (p50/p95/p99 in
        every summary) sorts once instead of once per query.
        """
        if not self.values:
            return math.nan
        if len(self._sorted) != len(self.values):
            self._sorted = sorted(self.values)
        ordered = self._sorted
        rank = max(0, min(len(ordered) - 1, math.ceil(pct / 100.0 * len(ordered)) - 1))
        return ordered[rank]


_PORT_LABELS = {
    PORT_AODV: "aodv",
    PORT_OLSR: "olsr",
    PORT_SIP: "sip",
    PORT_SLP: "slp",
}


def traffic_class_for_port(dport: int) -> str:
    """Map a UDP destination port to a coarse traffic class label."""
    label = _PORT_LABELS.get(dport)
    if label is not None:
        return label
    if 16384 <= dport < 32768:
        return "rtp"
    if dport in (5062, 5063):
        return "siphoc"
    if dport == 5065:
        return "flooding-register"  # baseline: broadcast REGISTER flooding
    if dport == 5066:
        return "proactive-hello"  # baseline: Pico-SIP HELLO mapping
    if 5060 <= dport < 5100:
        return "sip"  # softphone/WAN-leg ports
    return "other"


class Stats:
    """Simulation-wide measurement registry."""

    def __init__(self) -> None:
        self.traffic: dict[str, TrafficCounter] = defaultdict(TrafficCounter)
        self.counters: dict[str, int] = defaultdict(int)
        self.samples: dict[str, SampleSeries] = defaultdict(SampleSeries)

    # -- traffic -----------------------------------------------------------
    def record_transmission(self, dport: int, size: int) -> None:
        """Account one on-air transmission of ``size`` bytes to port ``dport``."""
        self.traffic[traffic_class_for_port(dport)].add(size)
        self.traffic["total"].add(size)

    def traffic_bytes(self, traffic_class: str) -> int:
        return self.traffic[traffic_class].bytes

    def traffic_packets(self, traffic_class: str) -> int:
        return self.traffic[traffic_class].packets

    # -- counters ----------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def count(self, name: str) -> int:
        return self.counters[name]

    # -- samples -----------------------------------------------------------
    def sample(self, name: str, value: float) -> None:
        self.samples[name].add(value)

    def series(self, name: str) -> SampleSeries:
        return self.samples[name]

    #: Version of the :meth:`to_dict` serialization schema. Bump on any
    #: incompatible shape change so archived exports stay interpretable.
    SCHEMA_VERSION = 1

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Lossless plain-dict form (schema-versioned, keys sorted).

        Unlike :meth:`summary` this keeps raw sample values, so
        :meth:`from_dict` reconstructs an equivalent :class:`Stats`. All
        traffic-class, counter and sample keys are sorted for stable
        serialization (byte-identical JSON across same-seed runs).
        """
        return {
            "schema_version": self.SCHEMA_VERSION,
            "traffic": {
                name: {"packets": counter.packets, "bytes": counter.bytes}
                for name, counter in sorted(self.traffic.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "samples": {
                name: list(series.values)
                for name, series in sorted(self.samples.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Stats":
        """Rebuild a :class:`Stats` from :meth:`to_dict` output."""
        version = data.get("schema_version")
        if version != cls.SCHEMA_VERSION:
            raise ValueError(
                f"unsupported Stats schema_version {version!r} "
                f"(expected {cls.SCHEMA_VERSION})"
            )
        stats = cls()
        for name, traffic in data.get("traffic", {}).items():
            counter = stats.traffic[name]
            counter.packets = int(traffic["packets"])
            counter.bytes = int(traffic["bytes"])
        for name, value in data.get("counters", {}).items():
            stats.counters[name] = int(value)
        for name, values in data.get("samples", {}).items():
            series = stats.samples[name]
            for value in values:
                series.add(value)
        return stats

    # -- reporting ---------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """A plain-dict snapshot suitable for printing or assertions."""
        return {
            "traffic": {
                name: {"packets": counter.packets, "bytes": counter.bytes}
                for name, counter in sorted(self.traffic.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "samples": {
                name: {
                    "count": series.count,
                    "mean": series.mean,
                    "min": series.minimum,
                    "max": series.maximum,
                    "p50": series.percentile(50),
                    "p95": series.percentile(95),
                    "p99": series.percentile(99),
                    "stddev": series.stddev,
                }
                for name, series in sorted(self.samples.items())
            },
        }
