"""Node mobility models.

Positions are updated in discrete ticks on the simulation clock. The random
waypoint model is the standard MANET evaluation workload; the paper's
testbed is quasi-static (laptops on desks, firewalled into multihop), which
the static placement helpers model.

Position writes go through the ``Node.position`` setter, which bumps the
attached medium's position epoch (invalidating its spatial-index neighbor
caches). Mobility models therefore avoid writing positions that did not
actually change — paused or clamped-stationary nodes cost nothing.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.netsim.node import Node
from repro.netsim.simulator import PeriodicTask, Simulator


def place_chain(nodes: Sequence[Node], spacing: float) -> None:
    """Place nodes on a straight line, ``spacing`` metres apart.

    With a medium range just above ``spacing`` this yields an n-1 hop chain
    (the firewall-enforced multihop setup of the paper's testbed).
    """
    for index, node in enumerate(nodes):
        node.position = (index * spacing, 0.0)


def place_grid(nodes: Sequence[Node], spacing: float, columns: int | None = None) -> None:
    """Place nodes on a square-ish grid, ``spacing`` metres apart."""
    if columns is None:
        columns = max(1, math.ceil(math.sqrt(len(nodes))))
    for index, node in enumerate(nodes):
        node.position = ((index % columns) * spacing, (index // columns) * spacing)


def place_random(
    nodes: Sequence[Node],
    sim: Simulator,
    width: float,
    height: float,
) -> None:
    """Place nodes uniformly at random in a ``width x height`` area."""
    for node in nodes:
        node.position = (sim.rng.uniform(0, width), sim.rng.uniform(0, height))


class RandomWaypointMobility:
    """Random waypoint model over a rectangular area.

    Each node repeatedly picks a uniform destination, moves there at a speed
    drawn from ``[min_speed, max_speed]``, pauses ``pause_time`` seconds, and
    repeats. Positions update every ``tick`` seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[Node],
        width: float,
        height: float,
        min_speed: float = 0.5,
        max_speed: float = 2.0,
        pause_time: float = 5.0,
        tick: float = 0.5,
    ) -> None:
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError("speeds must satisfy 0 < min_speed <= max_speed")
        self.sim = sim
        self.nodes = list(nodes)
        self.width = width
        self.height = height
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_time = pause_time
        self.tick = tick
        self._state: dict[int, dict[str, float | tuple[float, float]]] = {}
        self._task: PeriodicTask | None = None

    def start(self) -> "RandomWaypointMobility":
        for node in self.nodes:
            self._pick_waypoint(node)
        self._task = self.sim.schedule_periodic(self.tick, self._step)
        return self

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _pick_waypoint(self, node: Node) -> None:
        target = (self.sim.rng.uniform(0, self.width), self.sim.rng.uniform(0, self.height))
        speed = self.sim.rng.uniform(self.min_speed, self.max_speed)
        self._state[node.node_id] = {"target": target, "speed": speed, "pause_until": 0.0}
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "mobility.waypoint", node.ip, x=target[0], y=target[1],
                speed=speed,
            )

    def _step(self) -> None:
        now = self.sim.now
        for node in self.nodes:
            state = self._state[node.node_id]
            if now < float(state["pause_until"]):  # paused at a waypoint
                continue
            tx, ty = state["target"]  # type: ignore[misc]
            x, y = node.position
            dx, dy = tx - x, ty - y
            dist = math.hypot(dx, dy)
            step = float(state["speed"]) * self.tick
            if dist <= step:
                node.position = (tx, ty)
                state["pause_until"] = now + self.pause_time
                self._pick_waypoint_keep_pause(node, state)
            else:
                node.position = (x + dx / dist * step, y + dy / dist * step)

    def _pick_waypoint_keep_pause(self, node: Node, old_state: dict) -> None:
        pause_until = old_state["pause_until"]
        self._pick_waypoint(node)
        self._state[node.node_id]["pause_until"] = pause_until


class ReferencePointGroupMobility:
    """Reference Point Group Mobility (RPGM).

    Nodes move in teams: each group has a logical center that follows a
    random waypoint trajectory; members jitter around their reference
    point within ``group_radius``. This is the standard model for the
    paper's emergency-response scenario, where squads of responders move
    together through the incident area.
    """

    def __init__(
        self,
        sim: Simulator,
        groups: Sequence[Sequence[Node]],
        width: float,
        height: float,
        min_speed: float = 0.5,
        max_speed: float = 2.0,
        group_radius: float = 40.0,
        pause_time: float = 5.0,
        tick: float = 0.5,
    ) -> None:
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError("speeds must satisfy 0 < min_speed <= max_speed")
        if group_radius <= 0:
            raise ValueError("group_radius must be positive")
        self.sim = sim
        self.groups = [list(group) for group in groups]
        self.width = width
        self.height = height
        self.group_radius = group_radius
        self.tick = tick
        # The group centers are virtual nodes driven by random waypoint.
        self._centers = [
            Node(sim, -(index + 1), ip=None, hostname=f"rpgm-center-{index}")
            for index in range(len(self.groups))
        ]
        for center, group in zip(self._centers, self.groups):
            if group:
                xs = [node.position[0] for node in group]
                ys = [node.position[1] for node in group]
                center.position = (sum(xs) / len(xs), sum(ys) / len(ys))
        self._center_mobility = RandomWaypointMobility(
            sim, self._centers, width, height,
            min_speed=min_speed, max_speed=max_speed,
            pause_time=pause_time, tick=tick,
        )
        self._offsets: dict[int, tuple[float, float]] = {}
        self._task: PeriodicTask | None = None

    def start(self) -> "ReferencePointGroupMobility":
        for group in self.groups:
            for node in group:
                self._offsets[node.node_id] = self._random_offset()
        self._center_mobility.start()
        self._task = self.sim.schedule_periodic(self.tick, self._step)
        return self

    def stop(self) -> None:
        self._center_mobility.stop()
        if self._task is not None:
            self._task.stop()
            self._task = None

    def group_center(self, group_index: int) -> tuple[float, float]:
        return self._centers[group_index].position

    def _random_offset(self) -> tuple[float, float]:
        radius = self.group_radius * math.sqrt(self.sim.rng.random())
        angle = self.sim.rng.uniform(0, 2 * math.pi)
        return (radius * math.cos(angle), radius * math.sin(angle))

    def _step(self) -> None:
        for center, group in zip(self._centers, self.groups):
            cx, cy = center.position
            for node in group:
                ox, oy = self._offsets[node.node_id]
                # Members drift slowly around their reference point.
                if self.sim.rng.random() < 0.1:
                    self._offsets[node.node_id] = self._random_offset()
                    ox, oy = self._offsets[node.node_id]
                new_position = (
                    min(max(cx + ox, 0.0), self.width),
                    min(max(cy + oy, 0.0), self.height),
                )
                # Skip no-op writes: every position write bumps the medium's
                # position epoch and flushes all cached neighbor lists.
                if new_position != node.position:
                    node.position = new_position
