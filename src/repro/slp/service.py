"""SLP service model: service URLs, attributes, registrations and filters.

Service URLs follow RFC 2608 conventions, e.g.::

    service:siphoc-sip://192.168.0.1:5060
    service:gateway.siphoc://192.168.0.7:5062

Attributes are flat string pairs; predicates support the LDAPv3 subset SLP
uses in practice: ``(key=value)`` terms, ``*`` suffix wildcards, and ``&``
conjunctions like ``(&(user=sip:bob@voicehoc.ch)(transport=udp))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SlpError

#: Service types used by SIPHoc components.
SERVICE_SIP_CONTACT = "siphoc-sip"
SERVICE_GATEWAY = "gateway.siphoc"


@dataclass(frozen=True)
class ServiceUrl:
    """A parsed ``service:<type>://<host>[:port]`` URL."""

    service_type: str
    host: str
    port: int | None = None

    @classmethod
    def parse(cls, text: str) -> "ServiceUrl":
        if not text.startswith("service:"):
            raise SlpError(f"not a service URL: {text!r}")
        rest = text[len("service:") :]
        if "://" not in rest:
            raise SlpError(f"service URL missing address: {text!r}")
        service_type, address = rest.split("://", 1)
        if not service_type:
            raise SlpError(f"service URL missing type: {text!r}")
        port: int | None = None
        host = address
        if ":" in address:
            host, port_text = address.rsplit(":", 1)
            try:
                port = int(port_text)
            except ValueError as exc:
                raise SlpError(f"invalid port in service URL: {text!r}") from exc
        if not host:
            raise SlpError(f"service URL missing host: {text!r}")
        return cls(service_type=service_type, host=host, port=port)

    def __str__(self) -> str:
        out = f"service:{self.service_type}://{self.host}"
        if self.port is not None:
            out += f":{self.port}"
        return out

    @property
    def address(self) -> tuple[str, int]:
        if self.port is None:
            raise SlpError(f"service URL has no port: {self}")
        return (self.host, self.port)


@dataclass
class ServiceEntry:
    """A service known to an SLP agent (local registration or remote cache)."""

    url: ServiceUrl
    attributes: dict[str, str] = field(default_factory=dict)
    lifetime: float = 60.0
    expires_at: float = 0.0
    origin: str = ""  # IP of the node that registered the service

    def is_valid(self, now: float) -> bool:
        return now < self.expires_at

    def matches(self, service_type: str, predicate: str = "") -> bool:
        if self.url.service_type != service_type:
            return False
        if not predicate:
            return True
        return evaluate_predicate(predicate, self.attributes)

    def key(self) -> str:
        return str(self.url)


def format_attributes(attributes: dict[str, str]) -> str:
    """Serialize attributes in SLP attr-list form: ``(a=1),(b=2)``."""
    return ",".join(f"({key}={value})" for key, value in sorted(attributes.items()))


def parse_attributes(text: str) -> dict[str, str]:
    """Parse an SLP attr-list back into a dict."""
    attributes: dict[str, str] = {}
    depth = 0
    term = ""
    for char in text:
        if char == "(":
            depth += 1
            if depth == 1:
                term = ""
                continue
        elif char == ")":
            depth -= 1
            if depth == 0:
                if "=" in term:
                    key, value = term.split("=", 1)
                    attributes[key.strip()] = value
                continue
        if depth >= 1:
            term += char
    return attributes


def evaluate_predicate(predicate: str, attributes: dict[str, str]) -> bool:
    """Evaluate an LDAP-style filter against attributes.

    Supports ``(key=value)``, trailing-``*`` wildcards, and conjunction
    ``(&(a=b)(c=d))``. Unknown syntax evaluates to False (fail closed).
    """
    predicate = predicate.strip()
    if not predicate:
        return True
    expr, remaining = _parse_expression(predicate)
    if expr is None or remaining.strip():
        return False
    return _evaluate(expr, attributes)


def _parse_expression(text: str):
    text = text.lstrip()
    if not text.startswith("("):
        return None, text
    if text.startswith("(&"):
        inner = text[2:]
        children = []
        while inner.lstrip().startswith("("):
            child, inner = _parse_expression(inner)
            if child is None:
                return None, inner
            children.append(child)
        inner = inner.lstrip()
        if not inner.startswith(")"):
            return None, inner
        return ("and", children), inner[1:]
    end = text.find(")")
    if end == -1:
        return None, text
    term = text[1:end]
    if "=" not in term:
        return None, text[end + 1 :]
    key, value = term.split("=", 1)
    return ("eq", key.strip(), value), text[end + 1 :]


def _evaluate(expr, attributes: dict[str, str]) -> bool:
    kind = expr[0]
    if kind == "and":
        return all(_evaluate(child, attributes) for child in expr[1])
    _, key, value = expr
    actual = attributes.get(key)
    if actual is None:
        return False
    if value.endswith("*"):
        return actual.startswith(value[:-1])
    return actual == value
