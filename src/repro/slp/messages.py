"""SLP wire messages (RFC 2608 shape, compact binary encoding).

These encodings are used both by the standalone multicast SLP agent (the
baseline the related work criticises as too chatty for MANETs) and as the
*payload of SIPHoc's piggyback extensions* — so the packet analyzer can
dissect an AODV route reply and show the SLP service registration inside,
exactly like the Wireshark snapshot in Figure 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CodecError
from repro.routing.wire import Reader, Writer
from repro.slp.service import ServiceEntry, ServiceUrl, format_attributes, parse_attributes

SLP_VERSION = 2

FN_SRV_RQST = 1
FN_SRV_RPLY = 2
FN_SRV_REG = 3
FN_SRV_DEREG = 4
FN_SRV_ACK = 5

FUNCTION_NAMES = {
    FN_SRV_RQST: "SrvRqst",
    FN_SRV_RPLY: "SrvRply",
    FN_SRV_REG: "SrvReg",
    FN_SRV_DEREG: "SrvDeReg",
    FN_SRV_ACK: "SrvAck",
}


def _write_string(writer: Writer, text: str) -> None:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise CodecError("SLP string too long")
    writer.u16(len(data)).raw(data)


def _read_string(reader: Reader) -> str:
    length = reader.u16()
    return reader.raw(length).decode("utf-8")


@dataclass
class SrvRqst:
    """Service request: who offers ``service_type`` matching ``predicate``?

    ``requester`` carries the originator's address so that replies can be
    unicast back when the request has been re-flooded by intermediate
    agents (the broadcast emulation of SLP multicast convergence).
    """

    xid: int
    service_type: str
    predicate: str = ""
    requester: str = ""


@dataclass
class UrlEntry:
    """One service URL with its lifetime and attributes."""

    url: str
    lifetime: int
    attributes: str = ""

    def to_service_entry(self, now: float, origin: str) -> ServiceEntry:
        return ServiceEntry(
            url=ServiceUrl.parse(self.url),
            attributes=parse_attributes(self.attributes),
            lifetime=float(self.lifetime),
            expires_at=now + self.lifetime,
            origin=origin,
        )

    @classmethod
    def from_service_entry(cls, entry: ServiceEntry, remaining: float) -> "UrlEntry":
        return cls(
            url=str(entry.url),
            lifetime=max(1, int(remaining)),
            attributes=format_attributes(entry.attributes),
        )


@dataclass
class SrvRply:
    """Service reply: matching URL entries."""

    xid: int
    entries: list[UrlEntry] = field(default_factory=list)
    error: int = 0


@dataclass
class SrvReg:
    """Service registration (also the piggyback advert payload)."""

    xid: int
    entry: UrlEntry


@dataclass
class SrvDeReg:
    """Service deregistration."""

    xid: int
    url: str


@dataclass
class SrvAck:
    xid: int
    error: int = 0


SlpMessage = SrvRqst | SrvRply | SrvReg | SrvDeReg | SrvAck


def encode_slp(message: SlpMessage) -> bytes:
    writer = Writer()
    writer.u8(SLP_VERSION)
    if isinstance(message, SrvRqst):
        writer.u8(FN_SRV_RQST).u16(message.xid)
        _write_string(writer, message.service_type)
        _write_string(writer, message.predicate)
        _write_string(writer, message.requester)
    elif isinstance(message, SrvRply):
        writer.u8(FN_SRV_RPLY).u16(message.xid)
        writer.u16(message.error)
        writer.u16(len(message.entries))
        for entry in message.entries:
            writer.u16(entry.lifetime)
            _write_string(writer, entry.url)
            _write_string(writer, entry.attributes)
    elif isinstance(message, SrvReg):
        writer.u8(FN_SRV_REG).u16(message.xid)
        writer.u16(message.entry.lifetime)
        _write_string(writer, message.entry.url)
        _write_string(writer, message.entry.attributes)
    elif isinstance(message, SrvDeReg):
        writer.u8(FN_SRV_DEREG).u16(message.xid)
        _write_string(writer, message.url)
    elif isinstance(message, SrvAck):
        writer.u8(FN_SRV_ACK).u16(message.xid)
        writer.u16(message.error)
    else:  # pragma: no cover - defensive
        raise CodecError(f"unknown SLP message {message!r}")
    return writer.getvalue()


def decode_slp(data: bytes) -> SlpMessage:
    reader = Reader(data)
    version = reader.u8()
    if version != SLP_VERSION:
        raise CodecError(f"unsupported SLP version {version}")
    function = reader.u8()
    xid = reader.u16()
    if function == FN_SRV_RQST:
        return SrvRqst(
            xid=xid,
            service_type=_read_string(reader),
            predicate=_read_string(reader),
            requester=_read_string(reader),
        )
    if function == FN_SRV_RPLY:
        error = reader.u16()
        count = reader.u16()
        entries = []
        for _ in range(count):
            lifetime = reader.u16()
            url = _read_string(reader)
            attributes = _read_string(reader)
            entries.append(UrlEntry(url=url, lifetime=lifetime, attributes=attributes))
        return SrvRply(xid=xid, entries=entries, error=error)
    if function == FN_SRV_REG:
        lifetime = reader.u16()
        url = _read_string(reader)
        attributes = _read_string(reader)
        return SrvReg(xid=xid, entry=UrlEntry(url=url, lifetime=lifetime, attributes=attributes))
    if function == FN_SRV_DEREG:
        return SrvDeReg(xid=xid, url=_read_string(reader))
    if function == FN_SRV_ACK:
        return SrvAck(xid=xid, error=reader.u16())
    raise CodecError(f"unknown SLP function id {function}")
