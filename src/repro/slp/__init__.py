"""Service Location Protocol: service model, wire codec, multicast agent.

The binary message format here doubles as the payload of SIPHoc's routing
piggyback extensions; the flooding :class:`SlpAgent` is the inefficient
standard-SLP baseline the paper's approach replaces.
"""

from repro.slp.agent import SlpAgent
from repro.slp.messages import (
    FN_SRV_ACK,
    FN_SRV_DEREG,
    FN_SRV_REG,
    FN_SRV_RPLY,
    FN_SRV_RQST,
    FUNCTION_NAMES,
    SlpMessage,
    SrvAck,
    SrvDeReg,
    SrvReg,
    SrvRply,
    SrvRqst,
    UrlEntry,
    decode_slp,
    encode_slp,
)
from repro.slp.service import (
    SERVICE_GATEWAY,
    SERVICE_SIP_CONTACT,
    ServiceEntry,
    ServiceUrl,
    evaluate_predicate,
    format_attributes,
    parse_attributes,
)

__all__ = [
    "FN_SRV_ACK",
    "FN_SRV_DEREG",
    "FN_SRV_REG",
    "FN_SRV_RPLY",
    "FN_SRV_RQST",
    "FUNCTION_NAMES",
    "SERVICE_GATEWAY",
    "SERVICE_SIP_CONTACT",
    "ServiceEntry",
    "ServiceUrl",
    "SlpAgent",
    "SlpMessage",
    "SrvAck",
    "SrvDeReg",
    "SrvReg",
    "SrvRply",
    "SrvRqst",
    "UrlEntry",
    "decode_slp",
    "encode_slp",
    "evaluate_predicate",
    "format_attributes",
    "parse_attributes",
]
