"""Standard SLP agent over UDP port 427 (multicast emulated by flooding).

This is the *baseline* MANET service discovery the related work measured
and found wanting ([7] in the paper): every lookup floods a SrvRqst through
the whole network at the application layer, and every reply is a dedicated
unicast — which in a reactive MANET additionally triggers route discovery.
MANET SLP (in ``repro.core``) exists to avoid exactly this traffic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.netsim.node import Node
from repro.netsim.packet import BROADCAST, PORT_SLP
from repro.slp.messages import (
    SrvAck,
    SrvDeReg,
    SrvReg,
    SrvRply,
    SrvRqst,
    UrlEntry,
    decode_slp,
    encode_slp,
)
from repro.slp.service import ServiceEntry, ServiceUrl

LookupCallback = Callable[[list[ServiceEntry]], None]


@dataclass
class _PendingLookup:
    service_type: str
    results: dict[str, ServiceEntry] = field(default_factory=dict)
    callback: LookupCallback | None = None
    done: bool = False


class SlpAgent:
    """Combined SLP user/service agent with application-layer flooding."""

    DEFAULT_LIFETIME = 60.0
    LOOKUP_TIMEOUT = 2.0
    FLOOD_HOPS = 8

    def __init__(self, node: Node, rebroadcast: bool = True) -> None:
        self.node = node
        self.sim = node.sim
        self.rebroadcast = rebroadcast
        self._socket = node.bind(PORT_SLP, self._on_datagram)
        self._local: dict[str, ServiceEntry] = {}
        self._xid = itertools.count(1)
        self._pending: dict[int, _PendingLookup] = {}
        self._seen: dict[tuple[str, int], float] = {}

    def close(self) -> None:
        self._socket.close()

    # -- service agent side ------------------------------------------------------
    def register(
        self,
        url: ServiceUrl | str,
        attributes: dict[str, str] | None = None,
        lifetime: float = DEFAULT_LIFETIME,
    ) -> ServiceEntry:
        parsed = ServiceUrl.parse(url) if isinstance(url, str) else url
        entry = ServiceEntry(
            url=parsed,
            attributes=dict(attributes or {}),
            lifetime=lifetime,
            expires_at=self.sim.now + lifetime,
            origin=self.node.ip,
        )
        self._local[entry.key()] = entry
        return entry

    def deregister(self, url: ServiceUrl | str) -> None:
        key = str(ServiceUrl.parse(url) if isinstance(url, str) else url)
        self._local.pop(key, None)

    def local_services(self) -> list[ServiceEntry]:
        now = self.sim.now
        return [entry for entry in self._local.values() if entry.is_valid(now)]

    # -- user agent side -----------------------------------------------------------
    def find_services(
        self,
        service_type: str,
        predicate: str = "",
        timeout: float = LOOKUP_TIMEOUT,
        callback: LookupCallback | None = None,
    ) -> int:
        """Flood a SrvRqst; ``callback(entries)`` fires when ``timeout`` expires.

        Returns the transaction id (useful for tests). Local matches are
        included in the results immediately.
        """
        xid = next(self._xid)
        pending = _PendingLookup(service_type=service_type, callback=callback)
        now = self.sim.now
        for entry in self._local.values():
            if entry.is_valid(now) and entry.matches(service_type, predicate):
                pending.results[entry.key()] = entry
        self._pending[xid] = pending
        request = SrvRqst(
            xid=xid,
            service_type=service_type,
            predicate=predicate,
            requester=self.node.ip,
        )
        self._seen[(self.node.ip, xid)] = now + 30.0
        self._socket.send(BROADCAST, PORT_SLP, encode_slp(request), ttl=self.FLOOD_HOPS)
        self.node.stats.increment("slp.requests_sent")
        self.sim.schedule(timeout, self._finish_lookup, xid)
        return xid

    def _finish_lookup(self, xid: int) -> None:
        pending = self._pending.pop(xid, None)
        if pending is None or pending.done:
            return
        pending.done = True
        if pending.callback is not None:
            pending.callback(list(pending.results.values()))

    # -- receive path ------------------------------------------------------------------
    def _on_datagram(self, data: bytes, src_ip: str, sport: int) -> None:
        try:
            message = decode_slp(data)
        except Exception:
            self.node.stats.increment("slp.parse_errors")
            return
        if isinstance(message, SrvRqst):
            self._handle_request(message, src_ip)
        elif isinstance(message, SrvRply):
            self._handle_reply(message, src_ip)
        elif isinstance(message, SrvReg):
            # Unicast registration toward a DA is out of scope for the MANET
            # baseline; acknowledge for protocol completeness.
            self._socket.send(src_ip, sport, encode_slp(SrvAck(xid=message.xid)))
        elif isinstance(message, SrvDeReg):
            self._socket.send(src_ip, sport, encode_slp(SrvAck(xid=message.xid)))

    def _handle_request(self, request: SrvRqst, src_ip: str) -> None:
        if not request.requester or request.requester == self.node.ip:
            return
        key = (request.requester, request.xid)
        now = self.sim.now
        if self._seen.get(key, 0.0) > now:
            return
        self._seen[key] = now + 30.0
        matches = [
            entry
            for entry in self._local.values()
            if entry.is_valid(now) and entry.matches(request.service_type, request.predicate)
        ]
        if matches:
            reply = SrvRply(
                xid=request.xid,
                entries=[
                    UrlEntry.from_service_entry(entry, entry.expires_at - now)
                    for entry in matches
                ],
            )
            self._socket.send(request.requester, PORT_SLP, encode_slp(reply))
            self.node.stats.increment("slp.replies_sent")
        if self.rebroadcast:
            self._socket.send(
                BROADCAST, PORT_SLP, encode_slp(request), ttl=self.FLOOD_HOPS
            )
            self.node.stats.increment("slp.requests_forwarded")
        if len(self._seen) > 2048:
            self._seen = {k: v for k, v in self._seen.items() if v > now}

    def _handle_reply(self, reply: SrvRply, src_ip: str) -> None:
        pending = self._pending.get(reply.xid)
        if pending is None or pending.done:
            return
        now = self.sim.now
        for url_entry in reply.entries:
            try:
                entry = url_entry.to_service_entry(now, origin=src_ip)
            except Exception:
                continue
            pending.results[entry.key()] = entry
