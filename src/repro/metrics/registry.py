"""Instrument registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` holds every instrument of one simulation.
Instruments are deliberately minimal — no labels, no exemplars — because
the registry's contract is *determinism*: a snapshot is a pure function of
simulation state, so two same-seed runs export byte-identical time series.
Three instrument types cover what the experiments need:

``Counter``
    A monotonically increasing integer (e.g. ``metrics.scrapes``). Owned
    by the metrics layer itself or by harness code; simulation hot paths
    keep using :class:`repro.netsim.stats.Stats` counters, which gauges
    mirror read-only at scrape time.

``Gauge``
    A point-in-time reading, either set imperatively (:meth:`Gauge.set`)
    or — the common case — computed by a callback at scrape time
    (``registry.gauge("txqueue.depth.max", fn=...)``). Callback gauges
    cost nothing between scrapes and cannot perturb the simulation: they
    must only *read* state (see DESIGN.md §5i determinism contract).

``Histogram``
    Fixed upper-bound buckets chosen at registration time (Prometheus
    classic-histogram semantics: cumulative ``le`` buckets plus ``+Inf``,
    a running sum and a count). Fed either by ``observe()`` calls or by a
    registered *sampler* that observes a whole population per scrape
    (e.g. every node's TX-queue depth).

The registry never reads the host clock and never draws randomness — lint
rule OBS001 enforces that for the whole package except the profiler.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Iterable

from repro.errors import MetricsError

#: Default histogram bucket bounds for small queue-depth style populations.
DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.]*$")
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricsError(
            f"invalid metric name {name!r}: use dotted identifiers "
            "(letters, digits, '_', '.')"
        )
    return name


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def read(self) -> int:
        return self.value


class Gauge:
    """A point-in-time reading: callback-driven or imperatively set."""

    __slots__ = ("name", "help", "fn", "_value")

    kind = "gauge"

    def __init__(
        self, name: str, fn: Callable[[], float] | None = None, help: str = ""
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.fn = fn
        self._value: float = 0.0

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise MetricsError(f"gauge {self.name} is callback-driven; cannot set()")
        self._value = value

    def read(self) -> float:
        if self.fn is not None:
            return self.fn()
        return self._value


class Histogram:
    """Fixed-bucket histogram (cumulative ``le`` semantics at export time).

    ``bounds`` are the finite upper bucket edges, strictly ascending; an
    implicit ``+Inf`` bucket catches everything above the last edge. The
    internal counts are *per-bucket* (non-cumulative); the snapshot codec
    and the Prometheus renderer cumulate on the way out.
    """

    __slots__ = ("name", "help", "bounds", "counts", "total", "count")

    kind = "histogram"

    def __init__(self, name: str, bounds: Iterable[float], help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise MetricsError(f"histogram {name} needs at least one bucket bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise MetricsError(
                f"histogram {name} bounds must be strictly ascending, got {edges}"
            )
        if any(math.isnan(edge) or math.isinf(edge) for edge in edges):
            raise MetricsError(f"histogram {name} bounds must be finite, got {edges}")
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)  # last slot is +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def read(self) -> dict[str, object]:
        """Snapshot form: cumulative bucket counts aligned with ``bounds``."""
        cumulative = []
        running = 0
        for bucket in self.counts:
            running += bucket
            cumulative.append(running)
        return {
            "bounds": list(self.bounds),
            "buckets": cumulative,  # cumulative, +Inf last == count
            "count": self.count,
            "sum": self.total,
        }


#: A sampler runs once per scrape, *before* instrument values are read.
#: It receives the scrape's simulation time and may observe histograms or
#: set imperative gauges; it must never mutate simulation state.
Sampler = Callable[[float], None]


class MetricsRegistry:
    """All instruments of one simulation, with get-or-create registration."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._samplers: list[Sampler] = []

    # -- registration -------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help=help)

    def gauge(
        self, name: str, fn: Callable[[], float] | None = None, help: str = ""
    ) -> Gauge:
        return self._register(Gauge, name, fn=fn, help=help)

    def histogram(
        self, name: str, bounds: Iterable[float] = DEPTH_BUCKETS, help: str = ""
    ) -> Histogram:
        return self._register(Histogram, name, bounds=bounds, help=help)

    def _register(self, cls, name: str, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricsError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"cannot re-register as {cls.kind}"
                )
            return existing
        instrument = cls(name, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def add_sampler(self, sampler: Sampler) -> None:
        """Run ``sampler(t)`` at every scrape before values are read."""
        self._samplers.append(sampler)

    # -- access -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._instruments.get(name)

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        """Every instrument, sorted by name (the canonical export order)."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    # -- collection ---------------------------------------------------------
    def run_samplers(self, t: float) -> None:
        for sampler in self._samplers:
            sampler(t)

    def collect(self, t: float) -> dict[str, dict[str, object]]:
        """One scrape: samplers first, then every value, sorted by name.

        Returns ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``
        with each section's keys sorted — the deterministic snapshot body
        the JSONL codec serializes.
        """
        self.run_samplers(t)
        counters: dict[str, object] = {}
        gauges: dict[str, object] = {}
        histograms: dict[str, object] = {}
        for instrument in self.instruments():
            if instrument.kind == "counter":
                counters[instrument.name] = instrument.read()
            elif instrument.kind == "gauge":
                gauges[instrument.name] = instrument.read()
            else:
                histograms[instrument.name] = instrument.read()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


# ---------------------------------------------------------------------------
# Prometheus text exposition (version 0.0.4)
# ---------------------------------------------------------------------------


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Map a dotted metric name onto the Prometheus grammar."""
    flat = _PROM_BAD.sub("_", name)
    return f"{prefix}_{flat}" if prefix else flat


def _fmt_value(value: object) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)  # type: ignore[arg-type]
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    return repr(number)


def render_prometheus(
    sections: dict[str, dict[str, object]],
    prefix: str = "repro",
    registry: MetricsRegistry | None = None,
) -> str:
    """Render one snapshot body as Prometheus text exposition format.

    ``sections`` is the dict :meth:`MetricsRegistry.collect` returns (or a
    parsed JSONL snapshot's body). When the originating ``registry`` is
    passed, instrument ``help`` strings become ``# HELP`` lines.
    """
    lines: list[str] = []

    def help_for(name: str) -> str:
        if registry is not None:
            instrument = registry.get(name)
            if instrument is not None and instrument.help:
                return instrument.help
        return ""

    for name, value in sections.get("counters", {}).items():
        prom = prometheus_name(name, prefix)
        text = help_for(name)
        if text:
            lines.append(f"# HELP {prom} {text}")
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_fmt_value(value)}")
    for name, value in sections.get("gauges", {}).items():
        prom = prometheus_name(name, prefix)
        text = help_for(name)
        if text:
            lines.append(f"# HELP {prom} {text}")
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt_value(value)}")
    for name, data in sections.get("histograms", {}).items():
        prom = prometheus_name(name, prefix)
        text = help_for(name)
        if text:
            lines.append(f"# HELP {prom} {text}")
        lines.append(f"# TYPE {prom} histogram")
        bounds = data["bounds"]  # type: ignore[index]
        buckets = data["buckets"]  # type: ignore[index]
        for bound, cumulative in zip(bounds, buckets):
            lines.append(f'{prom}_bucket{{le="{_fmt_value(bound)}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {data["count"]}')  # type: ignore[index]
        lines.append(f"{prom}_sum {_fmt_value(data['sum'])}")  # type: ignore[index]
        lines.append(f"{prom}_count {data['count']}")  # type: ignore[index]
    return "\n".join(lines) + ("\n" if lines else "")
