"""Opt-in kernel profiler: wall-time and event-count attribution.

This is the ONE module in the metrics package allowed to read the host
clock (``time.perf_counter``) — lint rules DET001 and OBS001 both exempt
exactly this file. The profiler never touches simulation time, never
draws randomness, and never changes the event schedule: it wraps each
scheduled callback in a timing shim at *schedule* time, so events keep
their original ``(time, seq)`` and fire in the same order; only the
callable object differs, which nothing in the kernel compares.

Zero overhead when off: :class:`~repro.netsim.simulator.Simulator` binds
its scheduling entry points straight to the kernel, and the profiler
works by shadowing those instance attributes (``sim.schedule`` etc.) with
wrappers plus shadowing ``sim.run`` to measure total wall-time per
advance. ``uninstall()`` restores the kernel bindings. Kernels themselves
have ``__slots__`` and are never monkeypatched.

Install the profiler *before* building the scenario: events scheduled
earlier are not wrapped, and their callback time lands in the kernel
residual. Attribution maps a callback's defining module onto a subsystem
(kernel, medium, routing, sip, slp, gateway, rtp, trace, faults,
harness); the gap between measured total wall-time and the sum of
callback self-times — heap/ring machinery, pops, clock advances — is
attributed to ``kernel`` as the ``<event-loop>`` handler.

Output: a ranked per-handler table (:meth:`ProfileReport.render`) and
collapsed-stack lines (:meth:`ProfileReport.collapsed`) loadable by
speedscope or flamegraph.pl (``subsystem;handler <microseconds>``).
"""

from __future__ import annotations

import functools
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import MetricsError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.simulator import Simulator

#: Module-prefix → subsystem map, most specific first. A callback defined
#: in a module matching no prefix lands in "other".
SUBSYSTEM_PREFIXES: tuple[tuple[str, str], ...] = (
    ("repro.netsim.medium", "medium"),
    ("repro.netsim.node", "medium"),
    ("repro.netsim", "kernel"),
    ("repro.routing", "routing"),
    ("repro.sip", "sip"),
    ("repro.core.manet_slp", "slp"),
    ("repro.core.handlers", "slp"),
    ("repro.slp", "slp"),
    ("repro.core.softphone", "sip"),
    ("repro.core.proxy", "sip"),
    ("repro.core.extension", "sip"),
    ("repro.core.stack", "sip"),
    ("repro.core", "gateway"),
    ("repro.rtp", "rtp"),
    ("repro.trace", "trace"),
    ("repro.faults", "faults"),
    ("repro.metrics", "kernel"),
    ("repro.scenarios", "harness"),
    ("repro.experiments", "harness"),
    ("repro.overload", "harness"),
    ("repro.baselines", "harness"),
)

#: The subsystems the acceptance gate expects simulation time to land in.
CORE_SUBSYSTEMS = frozenset(
    {"kernel", "medium", "routing", "sip", "slp", "rtp", "trace"}
)


def _unwrap(callback: Callable[..., Any]) -> Callable[..., Any]:
    """Peel partials and bound methods down to the defining function."""
    while True:
        if isinstance(callback, functools.partial):
            callback = callback.func
            continue
        inner = getattr(callback, "__func__", None)
        if inner is not None:
            callback = inner
            continue
        return callback


def subsystem_for_module(module: str) -> str:
    for prefix, subsystem in SUBSYSTEM_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return subsystem
    return "other"


def attribute(callback: Callable[..., Any]) -> tuple[str, str]:
    """Map a callback onto its ``(subsystem, handler)`` attribution key."""
    raw = _unwrap(callback)
    module = getattr(raw, "__module__", "") or ""
    qualname = getattr(raw, "__qualname__", None) or getattr(
        raw, "__name__", repr(raw)
    )
    short = module.rsplit(".", 1)[-1] if module else "?"
    return subsystem_for_module(module), f"{short}.{qualname}"


class KernelProfiler:
    """Attributes wall-time and event counts per handler and subsystem."""

    def __init__(self) -> None:
        # key -> [count, seconds]; key is (subsystem, handler)
        self._records: dict[tuple[str, str], list] = {}
        self._keys: dict[Any, tuple[str, str]] = {}  # raw function -> key cache
        self._total_wall = 0.0
        self._events = 0
        self._runs = 0
        self._sim: "Simulator" | None = None
        self._saved: tuple | None = None

    # -- install / uninstall -----------------------------------------------
    def install(self, sim: "Simulator") -> "KernelProfiler":
        if self._sim is not None:
            raise MetricsError("profiler is already installed on a simulator")
        if sim.profiler is not None:
            raise MetricsError("simulator already has a profiler installed")
        self._sim = sim
        kernel = sim._kernel
        orig_schedule = sim.schedule
        orig_schedule_at = sim.schedule_at
        orig_schedule_batch = sim.schedule_batch
        self._saved = (orig_schedule, orig_schedule_at, orig_schedule_batch)
        wrap = self._wrap

        def schedule(delay, callback, *args):
            return orig_schedule(delay, wrap(callback), *args)

        def schedule_at(at, callback, *args):
            return orig_schedule_at(at, wrap(callback), *args)

        def schedule_batch(entries):
            return orig_schedule_batch(
                [(delay, wrap(callback), args) for delay, callback, args in entries]
            )

        perf = time.perf_counter
        from repro.netsim.simulator import Simulator

        def run(until):
            start = perf()
            before = kernel.processed
            try:
                Simulator.run(sim, until)
            finally:
                self._total_wall += perf() - start
                self._events += kernel.processed - before
                self._runs += 1

        sim.schedule = schedule
        sim.schedule_at = schedule_at
        sim.schedule_batch = schedule_batch
        sim.run = run  # instance shadow over the class method
        sim.profiler = self
        return self

    def uninstall(self) -> None:
        sim = self._sim
        if sim is None:
            return
        saved = self._saved
        assert saved is not None
        sim.schedule, sim.schedule_at, sim.schedule_batch = saved
        try:
            del sim.run  # drop the instance shadow, revealing the class method
        except AttributeError:  # pragma: no cover - defensive
            pass
        sim.profiler = None
        self._sim = None
        self._saved = None
        # Already-scheduled wrapped callbacks keep recording when they fire;
        # that is harmless (their wrappers only append to this profiler).

    # -- timing -------------------------------------------------------------
    def _wrap(self, callback: Callable[..., Any]) -> Callable[..., Any]:
        raw = _unwrap(callback)
        key = self._keys.get(raw)
        if key is None:
            key = attribute(callback)
            self._keys[raw] = key
        records = self._records
        perf = time.perf_counter

        def timed(*args):
            start = perf()
            try:
                callback(*args)
            finally:
                elapsed = perf() - start
                record = records.get(key)
                if record is None:
                    records[key] = [1, elapsed]
                else:
                    record[0] += 1
                    record[1] += elapsed

        return timed

    # -- reporting ----------------------------------------------------------
    def report(self) -> "ProfileReport":
        rows = [
            ProfileRow(subsystem=key[0], handler=key[1], count=rec[0], seconds=rec[1])
            for key, rec in self._records.items()
        ]
        callback_time = sum(row.seconds for row in rows)
        residual = self._total_wall - callback_time
        if residual < 0.0:
            residual = 0.0
        callback_events = sum(row.count for row in rows)
        residual_events = self._events - callback_events
        if residual_events < 0:
            residual_events = 0
        rows.append(
            ProfileRow(
                subsystem="kernel",
                handler="<event-loop>",
                count=residual_events,
                seconds=residual,
            )
        )
        rows.sort(key=lambda row: (-row.seconds, row.subsystem, row.handler))
        return ProfileReport(
            rows=rows,
            total_wall=self._total_wall,
            events=self._events,
            runs=self._runs,
        )


class ProfileRow:
    __slots__ = ("subsystem", "handler", "count", "seconds")

    def __init__(self, subsystem: str, handler: str, count: int, seconds: float) -> None:
        self.subsystem = subsystem
        self.handler = handler
        self.count = count
        self.seconds = seconds


class ProfileReport:
    """A finished profile: ranked rows plus whole-run totals."""

    def __init__(
        self, rows: list[ProfileRow], total_wall: float, events: int, runs: int
    ) -> None:
        self.rows = rows
        self.total_wall = total_wall
        self.events = events
        self.runs = runs

    def subsystem_totals(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for row in self.rows:
            totals[row.subsystem] = totals.get(row.subsystem, 0.0) + row.seconds
        return dict(sorted(totals.items(), key=lambda item: -item[1]))

    def attributed_fraction(self, subsystems: frozenset | set = CORE_SUBSYSTEMS) -> float:
        """Fraction of measured wall-time landing in the named subsystems."""
        if self.total_wall <= 0.0:
            return 1.0
        named = sum(
            row.seconds for row in self.rows if row.subsystem in subsystems
        )
        fraction = named / self.total_wall
        return 1.0 if fraction > 1.0 else fraction

    def render(self, top: int = 20) -> str:
        lines = [
            f"profiled {self.events} events over {self.runs} run(s), "
            f"{self.total_wall * 1e3:.1f} ms wall",
            "",
            f"{'subsystem':<10} {'handler':<44} {'events':>9} {'ms':>9} {'%':>6}",
        ]
        total = self.total_wall if self.total_wall > 0 else 1.0
        for row in self.rows[:top]:
            lines.append(
                f"{row.subsystem:<10} {row.handler[:44]:<44} {row.count:>9} "
                f"{row.seconds * 1e3:>9.2f} {100.0 * row.seconds / total:>5.1f}%"
            )
        lines.append("")
        lines.append("per-subsystem:")
        for name, seconds in self.subsystem_totals().items():
            lines.append(
                f"  {name:<10} {seconds * 1e3:>9.2f} ms {100.0 * seconds / total:>5.1f}%"
            )
        return "\n".join(lines)

    def collapsed(self) -> str:
        """Collapsed-stack lines (``subsystem;handler <microseconds>``).

        One line per handler, weight in integer microseconds (minimum 1 for
        any handler that fired) — the format flamegraph.pl and speedscope
        ingest directly.
        """
        lines = []
        for row in self.rows:
            weight = int(row.seconds * 1e6)
            if weight <= 0:
                if row.count <= 0:
                    continue
                weight = 1
            lines.append(f"{row.subsystem};{row.handler} {weight}")
        return "\n".join(lines) + ("\n" if lines else "")
