"""Terminal rendering for metrics exports: tables and sparkline dashboards.

Pure text transforms over parsed :class:`~repro.metrics.scraper.
MetricsSection` data — no simulation imports, no clock, no randomness.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.metrics.scraper import MetricsSection, Snapshot

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Iterable[float], width: int = 60) -> str:
    """Render a numeric series as a fixed-width ASCII sparkline.

    Longer series are downsampled by taking the max of each chunk (peaks
    are what queue-depth dashboards must not lose); shorter series are
    rendered one glyph per sample. A flat series renders as all-minimum.
    """
    series = [float(v) for v in values]
    if not series:
        return ""
    if len(series) > width:
        chunk = len(series) / width
        series = [
            max(series[int(i * chunk) : max(int((i + 1) * chunk), int(i * chunk) + 1)])
            for i in range(width)
        ]
    lo = min(series)
    hi = max(series)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(series)
    top = len(SPARK_CHARS) - 1
    return "".join(SPARK_CHARS[int((v - lo) / span * top)] for v in series)


def series_for(snapshots: list[Snapshot], name: str) -> list[tuple[float, float]]:
    """Extract one metric's ``(t, value)`` series across snapshots.

    Counters and gauges yield their value; histograms yield their running
    observation count (the scalar that is meaningful as a time series).
    """
    series: list[tuple[float, float]] = []
    for snap in snapshots:
        if name in snap.gauges:
            series.append((snap.t, float(snap.gauges[name])))
        elif name in snap.counters:
            series.append((snap.t, float(snap.counters[name])))
        elif name in snap.histograms:
            series.append((snap.t, float(snap.histograms[name].get("count", 0))))
    return series


def metric_names(snapshots: list[Snapshot]) -> list[str]:
    names: set[str] = set()
    for snap in snapshots:
        names.update(snap.counters)
        names.update(snap.gauges)
        names.update(snap.histograms)
    return sorted(names)


def _section_title(section: MetricsSection, index: int) -> str:
    label = section.label or f"section {index}"
    return (
        f"== {label}: {len(section.snapshots)} snapshots @ "
        f"{section.interval:g}s =="
    )


def render_table(
    sections: list[MetricsSection], names: list[str] | None = None
) -> str:
    """Per-metric min/max/last table, one block per section."""
    blocks: list[str] = []
    for index, section in enumerate(sections):
        lines = [_section_title(section, index)]
        available = metric_names(section.snapshots)
        selected = [n for n in (names or available) if n in available]
        lines.append(f"{'metric':<34} {'min':>10} {'max':>10} {'last':>10}")
        for name in selected:
            series = [value for _, value in series_for(section.snapshots, name)]
            if not series:
                continue
            lines.append(
                f"{name:<34} {min(series):>10g} {max(series):>10g} {series[-1]:>10g}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_dash(
    sections: list[MetricsSection],
    names: list[str] | None = None,
    width: int = 60,
) -> str:
    """Sparkline dashboard: one row per metric, peaks preserved."""
    blocks: list[str] = []
    for index, section in enumerate(sections):
        lines = [_section_title(section, index)]
        available = metric_names(section.snapshots)
        selected = [n for n in (names or available) if n in available]
        for name in selected:
            series = [value for _, value in series_for(section.snapshots, name)]
            if not series:
                continue
            lines.append(
                f"{name:<34} {sparkline(series, width=width)}  "
                f"[{min(series):g}..{max(series):g}]"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def summarize_sections(sections: list[MetricsSection], top: int = 5) -> dict[str, Any]:
    """Compact machine-readable summary (embedded in benchmark reports).

    ``top_gauges`` ranks gauges by their maximum observed value — the
    quick "what moved" view a benchmark report wants inline.
    """
    scrape_count = sum(len(section.snapshots) for section in sections)
    peaks: dict[str, float] = {}
    for section in sections:
        for snap in section.snapshots:
            for name, value in snap.gauges.items():
                number = float(value)
                if name not in peaks or number > peaks[name]:
                    peaks[name] = number
    ranked = sorted(peaks.items(), key=lambda item: (-item[1], item[0]))[:top]
    return {
        "scrape_count": scrape_count,
        "sections": len(sections),
        "top_gauges": [{"name": name, "max": value} for name, value in ranked],
    }
