"""Deterministic sim-time scraper and the JSONL time-series codec.

The scraper snapshots a :class:`~repro.metrics.registry.MetricsRegistry`
every ``interval`` simulation seconds **without scheduling any events**.
Instead, :meth:`repro.netsim.simulator.Simulator.run` hands each clock
advance to :meth:`repro.netsim.kernel._KernelBase.run_scraped`, which
chops the advance at scrape boundaries and calls :meth:`MetricsScraper.
scrape` between chunks. Because chunked ``kernel.run`` calls pop exactly
the same ``(time, seq)`` sequence as one big call, the event schedule —
and therefore every kernel-parity and byte-identity gate — is unchanged
whether metrics are on or off. That is the whole determinism contract:

* no scrape events in the queue (schedule identical with metrics off),
* scrape times are ``tick * interval`` with an integer tick counter
  (no float accumulation drift),
* samplers and gauge callbacks only *read* simulation state,
* exports are canonical JSON (sorted keys, fixed separators) so two
  same-seed runs produce byte-identical JSONL files.

Module-level ``enable_default()`` / ``register()`` / ``export_registered()``
mirror :mod:`repro.trace.collector`: harness flags like ``--metrics`` turn
on a process-wide default so every scenario built afterwards scrapes
itself without plumbing a registry through each call site.
"""

from __future__ import annotations

import io
import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import MetricsError
from repro.metrics.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.simulator import Simulator

SCHEMA = "repro.metrics/v1"


@dataclass
class Snapshot:
    """One scrape: simulation time plus the registry's collected sections."""

    t: float
    counters: dict[str, Any] = field(default_factory=dict)
    gauges: dict[str, Any] = field(default_factory=dict)
    histograms: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "t": self.t,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": dict(sorted(self.histograms.items())),
        }


class MetricsScraper:
    """Snapshots a registry at fixed sim-time intervals during kernel runs."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        interval: float = 1.0,
        label: str = "",
    ) -> None:
        if interval <= 0 or math.isnan(interval) or math.isinf(interval):
            raise MetricsError(f"scrape interval must be positive and finite, got {interval}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.interval = float(interval)
        self.label = label
        self.enabled = True
        self.snapshots: list[Snapshot] = []
        self._tick = 0  # next scrape fires at (_tick + 1) * interval
        self._scrapes = self.registry.counter(
            "metrics.scrapes", help="Number of scrapes taken so far"
        )

    @property
    def next_due(self) -> float:
        return (self._tick + 1) * self.interval

    def attach(self, sim: "Simulator") -> "MetricsScraper":
        """Install on a simulator, aligning the next scrape after ``sim.now``."""
        if sim.metrics is not None and sim.metrics is not self:
            raise MetricsError("simulator already has a metrics scraper attached")
        # Skip boundaries already in the past so re-attachment mid-run
        # never scrapes at t <= now.
        while self.next_due <= sim.now:
            self._tick += 1
        sim.metrics = self
        return self

    def scrape(self, t: float) -> Snapshot:
        """Collect one snapshot at sim time ``t`` (a tick boundary)."""
        self._tick += 1
        self._scrapes.inc()
        sections = self.registry.collect(t)
        snap = Snapshot(
            t=t,
            counters=sections["counters"],
            gauges=sections["gauges"],
            histograms=sections["histograms"],
        )
        self.snapshots.append(snap)
        return snap

    # -- export -------------------------------------------------------------
    def meta(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "interval": self.interval,
            "label": self.label,
            "snapshots": len(self.snapshots),
        }

    def export_jsonl(self, target: Any) -> int:
        """Write the meta header plus one canonical-JSON line per snapshot.

        ``target`` is a path or a text file object. Returns the number of
        snapshot lines written (excluding the header).
        """
        if hasattr(target, "write"):
            return self._write(target)
        with open(target, "w", encoding="utf-8") as fh:
            return self._write(fh)

    def _write(self, fh: Any) -> int:
        dump = _canonical
        fh.write(dump(self.meta()) + "\n")
        for snap in self.snapshots:
            fh.write(dump(snap.to_dict()) + "\n")
        return len(self.snapshots)

    def export_text(self) -> str:
        buf = io.StringIO()
        self._write(buf)
        return buf.getvalue()


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class MetricsSection:
    """One scraper's contribution to an export: its meta plus snapshots."""

    meta: dict[str, Any]
    snapshots: list[Snapshot] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.meta.get("label", "")

    @property
    def interval(self) -> float:
        return float(self.meta.get("interval", 0.0))


def load_jsonl(source: Any) -> list[MetricsSection]:
    """Parse a metrics JSONL export; validates headers and every line.

    ``source`` is a path or a text file object. An export may concatenate
    several sections (:func:`export_registered` writes one per registered
    scraper, e.g. one per overload sweep point); each meta header line
    starts a new section.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        with open(source, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    lines = [line for line in lines if line.strip()]
    if not lines:
        raise MetricsError("empty metrics export")
    sections: list[MetricsSection] = []
    for lineno, line in enumerate(lines, start=1):
        try:
            body = json.loads(line)
        except json.JSONDecodeError as exc:
            raise MetricsError(f"line {lineno}: not JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise MetricsError(f"line {lineno}: expected a JSON object")
        if "schema" in body:
            if body.get("schema") != SCHEMA:
                raise MetricsError(
                    f"line {lineno}: unsupported schema {body.get('schema')!r} "
                    f"(want {SCHEMA!r})"
                )
            sections.append(MetricsSection(meta=body))
            continue
        if not sections:
            raise MetricsError(f"line {lineno}: snapshot before any meta header")
        if "t" not in body:
            raise MetricsError(f"line {lineno}: snapshot missing 't'")
        sections[-1].snapshots.append(
            Snapshot(
                t=body["t"],
                counters=body.get("counters", {}),
                gauges=body.get("gauges", {}),
                histograms=body.get("histograms", {}),
            )
        )
    return sections


# ---------------------------------------------------------------------------
# Process-wide default (mirrors repro.trace.collector's runtime toggle)
# ---------------------------------------------------------------------------

_default_interval: float | None = None
_registered: list[MetricsScraper] = []


def enable_default(interval: float = 1.0) -> None:
    """Make every scenario built from now on scrape itself at ``interval``."""
    global _default_interval
    if interval <= 0:
        raise MetricsError(f"scrape interval must be positive, got {interval}")
    _default_interval = float(interval)


def disable_default() -> None:
    global _default_interval
    _default_interval = None
    _registered.clear()


def default_interval() -> float | None:
    return _default_interval


def register(scraper: MetricsScraper) -> None:
    """Track a scraper for a later :func:`export_registered` call."""
    _registered.append(scraper)


def registered() -> list[MetricsScraper]:
    return list(_registered)


def export_registered(target: Any) -> int:
    """Concatenate every registered scraper's export into one JSONL file.

    Each scraper contributes its own meta header (carrying its label) then
    its snapshot lines, in registration order. Returns total snapshot
    lines written.
    """
    total = 0
    if hasattr(target, "write"):
        for scraper in _registered:
            total += scraper._write(target)
        return total
    with open(target, "w", encoding="utf-8") as fh:
        for scraper in _registered:
            total += scraper._write(fh)
    return total
