"""Sim-time metrics: instrument registry, deterministic scraper, profiler.

Public surface:

* :class:`MetricsRegistry`, :class:`Counter`, :class:`Gauge`,
  :class:`Histogram` — the instruments (:mod:`repro.metrics.registry`);
* :class:`MetricsScraper`, :func:`load_jsonl` and the process-wide
  default toggle (:mod:`repro.metrics.scraper`);
* :func:`install_scenario_instruments` — the standard gauge set over a
  :class:`~repro.scenarios.ManetScenario`;
* :class:`~repro.metrics.profiler.KernelProfiler` — opt-in wall-time
  attribution (imported from its module directly; it is the one part of
  this package allowed to touch the host clock);
* ``python -m repro.metrics`` — tables, sparkline dashboards, Prometheus
  exposition, profiling and the determinism smoke gate.

Design and the determinism contract: DESIGN.md §5i.
"""

from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.metrics.scraper import (
    SCHEMA,
    MetricsScraper,
    MetricsSection,
    Snapshot,
    default_interval,
    disable_default,
    enable_default,
    export_registered,
    load_jsonl,
    register,
    registered,
)
from repro.metrics.instruments import install_scenario_instruments

__all__ = [
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScraper",
    "MetricsSection",
    "Snapshot",
    "default_interval",
    "disable_default",
    "enable_default",
    "export_registered",
    "install_scenario_instruments",
    "load_jsonl",
    "register",
    "registered",
    "render_prometheus",
]
