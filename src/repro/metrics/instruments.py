"""Standard instrument set for a :class:`~repro.scenarios.ManetScenario`.

``install_scenario_instruments(scenario)`` registers the gauges the paper's
dynamics questions need — queue depths climbing toward the overload knee,
SLP cache churn, route-table growth, lease occupancy — plus per-scrape
depth histograms. Every callback is a read-only view over live scenario
state: aggregation happens at scrape time, so between scrapes the
instruments cost nothing and the simulation cannot tell they exist.

Gauge callbacks are ``functools.partial`` bindings of module-level
functions (never lambdas or bound closures stored on the scenario): the
shard-safety analysis treats partials of pure readers as inert, and the
callbacks survive :meth:`ManetScenario.restart_node` because they iterate
``scenario.stacks`` / ``scenario.phones`` at call time instead of
capturing the component objects that a restart replaces.

Stats-mirror gauges read :class:`repro.netsim.stats.Stats` with plain
``dict.get`` — never ``stats.counters[name]`` or ``Stats.count()``, which
would *insert* the key into the defaultdict and change ``summary()``
output: the exact observer effect the no-observer-effect gate in
``tools/check.sh`` exists to catch.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING

from repro.metrics.registry import DEPTH_BUCKETS, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenarios import ManetScenario

#: Bucket bounds for route-table sizes (they grow past queue depths).
ROUTE_BUCKETS = (0.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


# -- aggregation helpers (module-level so partials stay picklable/inert) ----

def _txqueue_depth_sum(scenario: "ManetScenario") -> int:
    return sum(
        node.tx_queue.depth for node in scenario.nodes if node.tx_queue is not None
    )


def _txqueue_depth_max(scenario: "ManetScenario") -> int:
    depths = [
        node.tx_queue.depth for node in scenario.nodes if node.tx_queue is not None
    ]
    return max(depths) if depths else 0


def _txqueue_peak_depth(scenario: "ManetScenario") -> int:
    peaks = [
        node.tx_queue.peak_depth for node in scenario.nodes if node.tx_queue is not None
    ]
    return max(peaks) if peaks else 0


def _txqueue_dropped(scenario: "ManetScenario") -> int:
    return sum(
        node.tx_queue.dropped for node in scenario.nodes if node.tx_queue is not None
    )


def _sip_inflight_sum(scenario: "ManetScenario") -> int:
    return sum(stack.proxy.inflight_forwards for stack in scenario.stacks)


def _sip_inflight_peak(scenario: "ManetScenario") -> int:
    peaks = [stack.proxy.inflight_peak for stack in scenario.stacks]
    return max(peaks) if peaks else 0


def _sip_rejected(scenario: "ManetScenario") -> int:
    return sum(stack.proxy.rejected_overload for stack in scenario.stacks)


def _gateway_leases(scenario: "ManetScenario") -> int:
    total = 0
    for stack in scenario.stacks:
        gateway = stack.gateway
        if gateway is not None and gateway.tunnel_server is not None:
            total += gateway.tunnel_server.active_lease_count
    return total


def _slp_cache_sum(scenario: "ManetScenario") -> int:
    return sum(stack.manet_slp.cache_size for stack in scenario.stacks)


def _slp_cache_max(scenario: "ManetScenario") -> int:
    sizes = [stack.manet_slp.cache_size for stack in scenario.stacks]
    return max(sizes) if sizes else 0


def _slp_local_sum(scenario: "ManetScenario") -> int:
    return sum(stack.manet_slp.local_service_count for stack in scenario.stacks)


def _routes_sum(scenario: "ManetScenario") -> int:
    return sum(stack.routing.route_count for stack in scenario.stacks)


def _routes_max(scenario: "ManetScenario") -> int:
    counts = [stack.routing.route_count for stack in scenario.stacks]
    return max(counts) if counts else 0


def _aodv_pending(scenario: "ManetScenario") -> int:
    return sum(
        stack.routing.pending_discovery_count
        for stack in scenario.stacks
        if hasattr(stack.routing, "pending_discovery_count")
    )


def _olsr_topology(scenario: "ManetScenario") -> int:
    sizes = [
        stack.routing.topology_size
        for stack in scenario.stacks
        if hasattr(stack.routing, "topology_size")
    ]
    return max(sizes) if sizes else 0


def _rtp_sessions(scenario: "ManetScenario") -> int:
    return sum(len(phone.media_sessions) for phone in scenario.phones.values())


def _rtp_backlog_sum(scenario: "ManetScenario") -> int:
    now = scenario.sim.now
    total = 0
    for phone in scenario.phones.values():
        for session in phone.media_sessions:
            total += session.jitter_buffer.backlog_at(now)
    return total


def _rtp_backlog_max(scenario: "ManetScenario") -> int:
    now = scenario.sim.now
    worst = 0
    for phone in scenario.phones.values():
        for session in phone.media_sessions:
            backlog = session.jitter_buffer.backlog_at(now)
            if backlog > worst:
                worst = backlog
    return worst


def _rtp_playout_delay_max(scenario: "ManetScenario") -> float:
    worst = 0.0
    for phone in scenario.phones.values():
        for session in phone.media_sessions:
            delay = session.jitter_buffer.playout_delay
            if delay > worst:
                worst = delay
    return worst


def _handover_active(scenario: "ManetScenario") -> int:
    total = 0
    for stack in scenario.stacks:
        if stack.handover is not None:
            total += stack.handover.active_attempts
    return total


def _handover_media_gap_max(scenario: "ManetScenario") -> float:
    worst = 0.0
    for stack in scenario.stacks:
        if stack.handover is not None:
            for gap in stack.handover.media_gaps:
                if gap > worst:
                    worst = gap
    return worst


def _sim_pending(scenario: "ManetScenario") -> int:
    return scenario.sim.pending_events


def _sim_processed(scenario: "ManetScenario") -> int:
    return scenario.sim.events_processed


def _stats_counter(scenario: "ManetScenario", name: str) -> int:
    # dict.get, NOT Stats.count(): the defaultdict must not grow a key.
    return scenario.stats.counters.get(name, 0)


def _depth_sampler(scenario: "ManetScenario", registry: MetricsRegistry, t: float) -> None:
    """Per-scrape population histograms: TX-queue depths and route counts."""
    depth_hist = registry.histogram("txqueue.depth.dist", bounds=DEPTH_BUCKETS)
    for node in scenario.nodes:
        if node.tx_queue is not None:
            depth_hist.observe(node.tx_queue.depth)
    route_hist = registry.histogram("routing.routes.dist", bounds=ROUTE_BUCKETS)
    for stack in scenario.stacks:
        route_hist.observe(stack.routing.route_count)


def install_scenario_instruments(
    scenario: "ManetScenario", registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Register the standard gauge/histogram set over a built scenario.

    Uses the scraper's registry when one is attached (the common path);
    passing ``registry`` explicitly supports standalone collection.
    """
    if registry is None:
        scraper = scenario.sim.metrics
        registry = scraper.registry if scraper is not None else MetricsRegistry()
    gauge = registry.gauge
    gauge("txqueue.depth.sum", fn=partial(_txqueue_depth_sum, scenario),
          help="Frames waiting across all TX queues")
    gauge("txqueue.depth.max", fn=partial(_txqueue_depth_max, scenario),
          help="Deepest single TX queue right now")
    gauge("txqueue.depth.peak", fn=partial(_txqueue_peak_depth, scenario),
          help="High-watermark: deepest any TX queue has ever been")
    gauge("txqueue.dropped", fn=partial(_txqueue_dropped, scenario),
          help="Frames shed by TX queue policies so far")
    gauge("sip.admission.inflight", fn=partial(_sip_inflight_sum, scenario),
          help="Dialog-initiating forwards awaiting a final response")
    gauge("sip.admission.inflight.peak", fn=partial(_sip_inflight_peak, scenario),
          help="Highest single-proxy inflight ever observed")
    gauge("sip.admission.rejected", fn=partial(_sip_rejected, scenario),
          help="Requests shed with 503 by admission control so far")
    gauge("gateway.leases.active", fn=partial(_gateway_leases, scenario),
          help="Active tunnel leases across all gateways")
    gauge("slp.cache.size.sum", fn=partial(_slp_cache_sum, scenario),
          help="Remote SLP entries cached across all nodes")
    gauge("slp.cache.size.max", fn=partial(_slp_cache_max, scenario),
          help="Largest single-node SLP cache")
    gauge("slp.local.services", fn=partial(_slp_local_sum, scenario),
          help="Locally registered SLP services across all nodes")
    gauge("routing.routes.sum", fn=partial(_routes_sum, scenario),
          help="Route-table entries across all nodes")
    gauge("routing.routes.max", fn=partial(_routes_max, scenario),
          help="Largest single route table")
    if scenario.config.routing == "aodv":
        gauge("routing.aodv.pending", fn=partial(_aodv_pending, scenario),
              help="AODV route discoveries in flight")
    else:
        gauge("routing.olsr.topology", fn=partial(_olsr_topology, scenario),
              help="Largest OLSR topology set (TC origins known)")
    gauge("rtp.sessions", fn=partial(_rtp_sessions, scenario),
          help="Open RTP sessions across all phones")
    gauge("rtp.jitter.backlog.sum", fn=partial(_rtp_backlog_sum, scenario),
          help="Frames buffered awaiting playout, all jitter buffers")
    gauge("rtp.jitter.backlog.max", fn=partial(_rtp_backlog_max, scenario),
          help="Deepest single jitter buffer")
    gauge("rtp.playout_delay.max", fn=partial(_rtp_playout_delay_max, scenario),
          help="Largest playout delay any live jitter buffer targets (s)")
    gauge("rtp.recovered", fn=partial(_stats_counter, scenario, "rtp.recovered"),
          help="Frames rebuilt from RFC 2198 redundancy (Stats mirror)")
    gauge("handover.active", fn=partial(_handover_active, scenario),
          help="Mid-call migrations currently in progress")
    gauge("handover.media_gap.max", fn=partial(_handover_media_gap_max, scenario),
          help="Longest measured media gap across completed handovers (s)")
    gauge("handover.attempted", fn=partial(_stats_counter, scenario, "handover.attempted"),
          help="Handover attempts started (Stats mirror)")
    gauge("handover.succeeded", fn=partial(_stats_counter, scenario, "handover.succeeded"),
          help="Handovers that re-anchored the session (Stats mirror)")
    gauge("handover.abandoned", fn=partial(_stats_counter, scenario, "handover.abandoned"),
          help="Handovers abandoned at the give-up deadline (Stats mirror)")
    gauge("sim.pending_events", fn=partial(_sim_pending, scenario),
          help="Live scheduled events in the kernel")
    gauge("sim.events_processed", fn=partial(_sim_processed, scenario),
          help="Events fired since the start of the run")
    gauge("ip.no_route", fn=partial(_stats_counter, scenario, "ip.no_route"),
          help="Packets dropped for lack of a route (Stats mirror)")
    gauge("sip.invites", fn=partial(_stats_counter, scenario, "sip.invites"),
          help="INVITE requests seen (Stats mirror)")
    registry.histogram("txqueue.depth.dist", bounds=DEPTH_BUCKETS,
                       help="Per-scrape distribution of TX-queue depths")
    registry.histogram("routing.routes.dist", bounds=ROUTE_BUCKETS,
                       help="Per-scrape distribution of route-table sizes")
    registry.add_sampler(partial(_depth_sampler, scenario, registry))
    return registry
