"""Metrics CLI: ``python -m repro.metrics <subcommand>``.

Subcommands:

* ``table``   — per-metric min/max/last table from a JSONL export
* ``dash``    — ASCII sparkline dashboard (one row per metric)
* ``prom``    — Prometheus text exposition of one snapshot
* ``profile`` — run the C1 quick variant under the kernel profiler,
  print per-subsystem wall-time attribution, optionally write
  collapsed stacks for speedscope / flamegraph.pl
* ``smoke``   — determinism gate: same-seed fresh-process exports must
  be byte-identical, and enabling metrics must change neither the event
  schedule nor any Stats counter (the ``tools/check.sh`` gate)
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

from repro.errors import MetricsError
from repro.metrics.registry import render_prometheus
from repro.metrics.scraper import load_jsonl
from repro.metrics.render import render_dash, render_table, summarize_sections

#: The smoke workload: a 3-hop chain with bounded TX queues and one call,
#: scraped every half sim-second. Small enough to run three times in the
#: gate, busy enough that gauges actually move.
_SMOKE_SCRIPT = """
import sys
from repro.scenarios import ManetConfig, ManetScenario

scenario = ManetScenario(ManetConfig(
    n_nodes=4, seed=7, metrics=True, metrics_interval=0.5, tx_queue_capacity=8,
))
scenario.start()
scenario.add_phone(0, "alice")
scenario.add_phone(3, "bob")
scenario.converge()
scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=3.0)
scenario.stop()
sys.stdout.write(scenario.metrics.export_text())
"""


def _load(path: str):
    try:
        return load_jsonl(path)
    except OSError as exc:
        raise SystemExit(f"error: cannot read metrics file: {exc}")
    except MetricsError as exc:
        raise SystemExit(f"error: malformed metrics file {path!r}: {exc}")


def _cmd_table(args: argparse.Namespace) -> int:
    sections = _load(args.metrics)
    print(render_table(sections, names=args.metric or None))
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    sections = _load(args.metrics)
    print(render_dash(sections, names=args.metric or None, width=args.width))
    return 0


def _cmd_prom(args: argparse.Namespace) -> int:
    sections = _load(args.metrics)
    for section in sections:
        if not section.snapshots:
            continue
        snap = section.snapshots[args.index]
        body = {
            "counters": snap.counters,
            "gauges": snap.gauges,
            "histograms": snap.histograms,
        }
        if section.label:
            print(f"# section {section.label} t={snap.t:g}")
        sys.stdout.write(render_prometheus(body))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.experiments.city import run_city_workload
    from repro.metrics.profiler import CORE_SUBSYSTEMS, KernelProfiler

    profiler = KernelProfiler()
    result = run_city_workload(
        n_nodes=args.nodes, n_calls=args.calls, drain=15.0, seed=args.seed,
        profiler=profiler,
    )
    report = profiler.report()
    print(
        f"C1 quick variant: {result['nodes']} nodes, {result['calls']} calls, "
        f"{result['events']} events"
    )
    print(report.render(top=args.top))
    fraction = report.attributed_fraction(CORE_SUBSYSTEMS)
    print(
        f"\nattributed to core subsystems "
        f"({', '.join(sorted(CORE_SUBSYSTEMS))}): {fraction:.1%}"
    )
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(report.collapsed())
        print(f"[collapsed stacks written to {args.collapsed}]")
    return 0


def _run_smoke_in_fresh_process() -> str:
    # Protocol identifiers (Call-ID, Via branch, packet uid) come from
    # process-global counters, so — like the trace/faults/overload smokes —
    # the byte-identity contract is between fresh interpreters.
    result = subprocess.run(
        [sys.executable, "-c", _SMOKE_SCRIPT],
        capture_output=True,
        text=True,
        check=True,
        env=dict(os.environ),
    )
    return result.stdout


def _cmd_smoke(args: argparse.Namespace) -> int:
    """Determinism gate: byte-identical exports, no observer effect."""
    from repro.globalstate import registry as global_registry
    from repro.scenarios import ManetConfig, ManetScenario

    failures: list[str] = []

    # 1. Same-seed exports from two fresh interpreters are byte-identical.
    try:
        export_a = _run_smoke_in_fresh_process()
        export_b = _run_smoke_in_fresh_process()
    except subprocess.CalledProcessError as exc:
        failures.append(f"fresh-process metrics run crashed: {exc.stderr[-300:]}")
        export_a = export_b = ""
    else:
        if not export_a.strip():
            failures.append("fresh-process metrics run produced no export")
        if export_a != export_b:
            failures.append("same-seed fresh-process metrics exports differ")

    # 2. The export parses and the snapshots carry the standard gauges.
    snapshots = 0
    if export_a:
        import io

        try:
            sections = load_jsonl(io.StringIO(export_a))
        except MetricsError as exc:
            failures.append(f"smoke export failed schema validation: {exc}")
        else:
            snapshots = sum(len(section.snapshots) for section in sections)
            if snapshots == 0:
                failures.append("smoke export contains no snapshots")
            else:
                last = sections[0].snapshots[-1]
                for expected in ("txqueue.depth.sum", "routing.routes.sum"):
                    if expected not in last.gauges:
                        failures.append(f"gauge {expected} missing from export")
                if render_prometheus(
                    {"counters": last.counters, "gauges": last.gauges,
                     "histograms": last.histograms}
                ).strip() == "":
                    failures.append("Prometheus exposition rendered empty")

    # 3. No observer effect: metrics on vs off — identical Stats summary,
    #    identical event schedule (processed count and sequence counter).
    #    In-process reruns need the global ID counters reset to realign.
    def run_once(metrics_on: bool):
        global_registry.reset_all()
        scenario = ManetScenario(ManetConfig(
            n_nodes=4, seed=7, metrics=metrics_on, metrics_interval=0.5,
            tx_queue_capacity=8,
        ))
        scenario.start()
        scenario.add_phone(0, "alice")
        scenario.add_phone(3, "bob")
        scenario.converge()
        scenario.call_and_wait("alice", "sip:bob@voicehoc.ch", duration=3.0)
        scenario.stop()
        return (
            scenario.stats.summary(),
            scenario.sim.events_processed,
            scenario.sim._kernel.seq,
        )

    stats_on, events_on, seq_on = run_once(True)
    stats_off, events_off, seq_off = run_once(False)
    if stats_on != stats_off:
        failures.append("enabling metrics changed the Stats summary")
    if events_on != events_off:
        failures.append(
            f"enabling metrics changed the event schedule "
            f"({events_on} vs {events_off} events processed)"
        )
    if seq_on != seq_off:
        failures.append(
            f"enabling metrics changed event sequence allocation "
            f"({seq_on} vs {seq_off})"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"metrics smoke ok: {snapshots} snapshots byte-identical across fresh "
        f"processes; metrics on/off Stats and schedule identical "
        f"({events_on} events)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics",
        description="Analyze repro.metrics JSONL time-series exports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tab = sub.add_parser("table", help="per-metric min/max/last table")
    p_tab.add_argument("metrics", help="metrics JSONL file")
    p_tab.add_argument(
        "--metric", action="append", default=[], help="metric name (repeatable)"
    )
    p_tab.set_defaults(fn=_cmd_table)

    p_dash = sub.add_parser("dash", help="ASCII sparkline dashboard")
    p_dash.add_argument("metrics", help="metrics JSONL file")
    p_dash.add_argument(
        "--metric", action="append", default=[], help="metric name (repeatable)"
    )
    p_dash.add_argument("--width", type=int, default=60, help="sparkline width")
    p_dash.set_defaults(fn=_cmd_dash)

    p_prom = sub.add_parser("prom", help="Prometheus text exposition of one snapshot")
    p_prom.add_argument("metrics", help="metrics JSONL file")
    p_prom.add_argument(
        "--index", type=int, default=-1,
        help="snapshot index within each section (default: last)",
    )
    p_prom.set_defaults(fn=_cmd_prom)

    p_prof = sub.add_parser(
        "profile", help="profile the C1 quick variant, print attribution"
    )
    p_prof.add_argument("--nodes", type=int, default=300)
    p_prof.add_argument("--calls", type=int, default=6)
    p_prof.add_argument("--seed", type=int, default=1)
    p_prof.add_argument("--top", type=int, default=20, help="handlers to list")
    p_prof.add_argument(
        "--collapsed", metavar="OUT.TXT",
        help="write collapsed stacks (speedscope / flamegraph.pl input)",
    )
    p_prof.set_defaults(fn=_cmd_profile)

    p_smk = sub.add_parser(
        "smoke", help="determinism gate: byte-identical exports, no observer effect"
    )
    p_smk.set_defaults(fn=_cmd_smoke)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(141)
