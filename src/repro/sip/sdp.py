"""SDP — Session Description Protocol (RFC 4566 subset).

VoIP applications exchange SDP offers/answers inside INVITE/200 bodies to
negotiate the RTP endpoint (connection address + media port) and codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SipParseError
from repro.rtp.codecs import AUXILIARY_PAYLOAD_TYPES

CRLF = "\r\n"

#: Static RTP/AVP payload types we understand (payload type -> rtpmap).
WELL_KNOWN_PAYLOADS = {
    0: "PCMU/8000",
    8: "PCMA/8000",
    13: "CN/8000",
    18: "G729/8000",
    34: "H263/90000",
    96: "red/8000",
    101: "telephone-event/8000",
}


@dataclass
class MediaDescription:
    """One m= line with its attributes."""

    media: str
    port: int
    protocol: str = "RTP/AVP"
    payload_types: list[int] = field(default_factory=lambda: [0])
    attributes: list[str] = field(default_factory=list)

    def direction(self) -> str:
        """Media direction: sendrecv (default), sendonly, recvonly, inactive."""
        for attribute in self.attributes:
            if attribute in ("sendrecv", "sendonly", "recvonly", "inactive"):
                return attribute
        return "sendrecv"

    def rtpmaps(self) -> dict[int, str]:
        maps = {}
        for attribute in self.attributes:
            if attribute.startswith("rtpmap:"):
                try:
                    payload_text, encoding = attribute[len("rtpmap:") :].split(None, 1)
                    maps[int(payload_text)] = encoding.strip()
                except ValueError:
                    continue
        for payload in self.payload_types:
            maps.setdefault(payload, WELL_KNOWN_PAYLOADS.get(payload, "unknown"))
        return maps


@dataclass
class SessionDescription:
    """A parsed SDP body."""

    origin_address: str
    connection_address: str
    session_name: str = "-"
    session_id: int = 0
    session_version: int = 0
    media: list[MediaDescription] = field(default_factory=list)

    @classmethod
    def offer(
        cls,
        address: str,
        audio_port: int,
        payload_types: list[int] | None = None,
        session_id: int = 1,
        video_port: int | None = None,
        video_payloads: list[int] | None = None,
    ) -> "SessionDescription":
        """Build an offer for ``address``: audio, plus video when asked."""
        payloads = payload_types if payload_types is not None else [0]
        media = [
            MediaDescription(
                media="audio",
                port=audio_port,
                payload_types=payloads,
                attributes=[
                    f"rtpmap:{pt} {WELL_KNOWN_PAYLOADS.get(pt, 'unknown')}"
                    for pt in payloads
                ],
            )
        ]
        if video_port is not None:
            vpayloads = video_payloads if video_payloads is not None else [34]
            media.append(
                MediaDescription(
                    media="video",
                    port=video_port,
                    payload_types=vpayloads,
                    attributes=[
                        f"rtpmap:{pt} {WELL_KNOWN_PAYLOADS.get(pt, 'unknown')}"
                        for pt in vpayloads
                    ],
                )
            )
        return cls(
            origin_address=address,
            connection_address=address,
            session_id=session_id,
            session_version=session_id,
            media=media,
        )

    def answer(
        self,
        address: str,
        audio_port: int,
        video_port: int | None = None,
        accept_payloads: frozenset[int] | set[int] = frozenset(),
    ) -> "SessionDescription":
        """Answer this offer per RFC 3264: every offered stream appears in
        the answer, with port 0 for streams we decline (e.g. video when the
        answering phone has no camera).

        The answer takes the offer's first *codec* payload per stream.
        Auxiliary payloads (redundancy, comfort noise, telephone events)
        are echoed only when both offered and listed in
        ``accept_payloads`` — that is the capability negotiation the media
        plane keys off (e.g. RFC 2198 is used only when both ends accept
        the red payload type).
        """
        if not self.media:
            raise SipParseError("cannot answer an SDP offer without media")
        media = []
        for offered in self.media:
            codecs = [
                pt for pt in offered.payload_types if pt not in AUXILIARY_PAYLOAD_TYPES
            ]
            chosen = codecs[:1] or [0]
            chosen += [
                pt
                for pt in offered.payload_types
                if pt in AUXILIARY_PAYLOAD_TYPES and pt in accept_payloads
            ]
            if offered.media == "audio":
                port = audio_port
            elif offered.media == "video":
                port = video_port if video_port is not None else 0
            else:
                port = 0  # unsupported stream kind: rejected
            attributes = (
                [
                    f"rtpmap:{pt} {WELL_KNOWN_PAYLOADS.get(pt, 'unknown')}"
                    for pt in chosen
                ]
                if port > 0
                else []
            )
            media.append(
                MediaDescription(
                    media=offered.media,
                    port=port,
                    protocol=offered.protocol,
                    payload_types=chosen,
                    attributes=attributes,
                )
            )
        return SessionDescription(
            origin_address=address,
            connection_address=address,
            session_id=self.session_id + 1,
            session_version=self.session_id + 1,
            media=media,
        )

    @property
    def audio(self) -> MediaDescription | None:
        for media in self.media:
            if media.media == "audio":
                return media
        return None

    @property
    def video(self) -> MediaDescription | None:
        for media in self.media:
            if media.media == "video" and media.port > 0:
                return media
        return None

    @property
    def video_endpoint(self) -> tuple[str, int] | None:
        video = self.video
        if video is None:
            return None
        return (self.connection_address, video.port)

    @property
    def direction(self) -> str:
        audio = self.audio
        return audio.direction() if audio is not None else "sendrecv"

    def with_direction(self, direction: str) -> "SessionDescription":
        """A copy with the audio stream's direction attribute replaced."""
        if direction not in ("sendrecv", "sendonly", "recvonly", "inactive"):
            raise SipParseError(f"invalid media direction {direction!r}")
        media = []
        for description in self.media:
            attributes = [
                a
                for a in description.attributes
                if a not in ("sendrecv", "sendonly", "recvonly", "inactive")
            ]
            if description.media == "audio":
                attributes.append(direction)
            media.append(
                MediaDescription(
                    media=description.media,
                    port=description.port,
                    protocol=description.protocol,
                    payload_types=list(description.payload_types),
                    attributes=attributes,
                )
            )
        return SessionDescription(
            origin_address=self.origin_address,
            connection_address=self.connection_address,
            session_name=self.session_name,
            session_id=self.session_id,
            session_version=self.session_version + 1,
            media=media,
        )

    def with_address(self, address: str) -> "SessionDescription":
        """A copy re-anchored to a new local address (§5k handover).

        Rewrites the origin and connection lines and bumps the version, as
        a re-INVITE offer from a host that moved interfaces must. Media
        ports are unchanged: the RTP session keeps its socket, SSRC and
        sequence space across the move.
        """
        media = [
            MediaDescription(
                media=description.media,
                port=description.port,
                protocol=description.protocol,
                payload_types=list(description.payload_types),
                attributes=list(description.attributes),
            )
            for description in self.media
        ]
        return SessionDescription(
            origin_address=address,
            connection_address=address,
            session_name=self.session_name,
            session_id=self.session_id,
            session_version=self.session_version + 1,
            media=media,
        )

    @property
    def rtp_endpoint(self) -> tuple[str, int] | None:
        """The (address, port) the peer wants RTP sent to."""
        audio = self.audio
        if audio is None:
            return None
        return (self.connection_address, audio.port)

    def serialize(self) -> bytes:
        lines = [
            "v=0",
            f"o=- {self.session_id} {self.session_version} IN IP4 {self.origin_address}",
            f"s={self.session_name}",
            f"c=IN IP4 {self.connection_address}",
            "t=0 0",
        ]
        for media in self.media:
            payloads = " ".join(str(pt) for pt in media.payload_types)
            lines.append(f"m={media.media} {media.port} {media.protocol} {payloads}")
            lines.extend(f"a={attribute}" for attribute in media.attributes)
        return (CRLF.join(lines) + CRLF).encode("utf-8")

    def __bytes__(self) -> bytes:
        return self.serialize()


def parse_sdp(data: bytes) -> SessionDescription:
    """Parse an SDP body. Raises :class:`SipParseError` on malformed input."""
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SipParseError("SDP body is not valid UTF-8") from exc
    origin_address = ""
    connection_address = ""
    session_name = "-"
    session_id = 0
    session_version = 0
    media: list[MediaDescription] = []
    for raw_line in text.replace("\r\n", "\n").split("\n"):
        line = raw_line.strip()
        if not line:
            continue
        if len(line) < 2 or line[1] != "=":
            raise SipParseError(f"malformed SDP line: {line!r}")
        kind, value = line[0], line[2:]
        if kind == "o":
            parts = value.split()
            if len(parts) >= 6:
                try:
                    session_id = int(parts[1])
                    session_version = int(parts[2])
                except ValueError:
                    pass
                origin_address = parts[5]
        elif kind == "s":
            session_name = value
        elif kind == "c":
            parts = value.split()
            if len(parts) == 3:
                connection_address = parts[2]
        elif kind == "m":
            parts = value.split()
            if len(parts) < 4:
                raise SipParseError(f"malformed media line: {line!r}")
            try:
                port = int(parts[1])
                payloads = [int(pt) for pt in parts[3:]]
            except ValueError as exc:
                raise SipParseError(f"malformed media line: {line!r}") from exc
            media.append(
                MediaDescription(
                    media=parts[0], port=port, protocol=parts[2], payload_types=payloads
                )
            )
        elif kind == "a" and media:
            media[-1].attributes.append(value)
    if not connection_address:
        connection_address = origin_address
    if not connection_address:
        raise SipParseError("SDP has no connection address")
    return SessionDescription(
        origin_address=origin_address or connection_address,
        connection_address=connection_address,
        session_name=session_name,
        session_id=session_id,
        session_version=session_version,
        media=media,
    )
