"""SIP transaction layer (RFC 3261 section 17, UDP rules).

Implements the four transaction state machines with their retransmission
and timeout timers:

* INVITE client (timers A/B/D) — includes the RFC 6026 "Accepted" state on
  the server side so 200 retransmissions are absorbed correctly.
* non-INVITE client (timers E/F/K)
* INVITE server (timers G/H/I/L)
* non-INVITE server (timer J)

The transaction user (UA core or proxy core) supplies callbacks; 2xx ACKs
are passed through to the TU as RFC 3261 requires.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.errors import SipTransactionError
from repro.netsim.simulator import EventHandle, Simulator
from repro.sip.message import SipRequest, SipResponse
from repro.sip.transport import Address, SipTransport, new_branch

T1 = 0.5
T2 = 4.0
T4 = 5.0
TIMER_B = 64 * T1
TIMER_D = 32.0
TIMER_F = 64 * T1
TIMER_H = 64 * T1
TIMER_J = 64 * T1
TIMER_L = 64 * T1

ResponseFn = Callable[[SipResponse], None]
TimeoutFn = Callable[[], None]
RequestFn = Callable[[SipRequest, "ServerTransaction | None", Address], None]


class TxnState(enum.Enum):
    CALLING = "calling"
    TRYING = "trying"
    PROCEEDING = "proceeding"
    COMPLETED = "completed"
    CONFIRMED = "confirmed"
    ACCEPTED = "accepted"
    TERMINATED = "terminated"


class _Transaction:
    """Timer bookkeeping shared by client and server transactions."""

    role = "txn"

    def __init__(self, layer: "TransactionLayer", key: tuple[str, str]) -> None:
        self.layer = layer
        self.sim: Simulator = layer.sim
        self.key = key
        self.state = TxnState.TRYING
        self._timers: list[EventHandle] = []

    def _set_state(self, new_state: TxnState) -> None:
        """State-machine edge; traces every transition when tracing is on."""
        old = self.state
        if old is new_state:
            return
        self.state = new_state
        tracer = self.sim.tracer
        if tracer is not None:
            node = self.layer.transport.node
            tracer.emit(
                "sip.txn_state",
                node.ip or node.wired_ip or "",
                branch=self.key[0],
                method=self.key[1],
                role=self.role,
                old=old.value,
                new=new_state.value,
            )

    def _after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        # Prune fired/cancelled handles first: a transaction on a lossy link
        # reschedules its retransmission timer dozens of times, and keeping
        # every dead handle until terminate() grows without bound.
        if len(self._timers) > 2:
            self._timers = [h for h in self._timers if not h.done]
        handle = self.sim.schedule(delay, self._guarded, callback)
        self._timers.append(handle)
        return handle

    def _guarded(self, callback: Callable[[], None]) -> None:
        if self.state is not TxnState.TERMINATED:
            callback()

    def terminate(self) -> None:
        if self.state is TxnState.TERMINATED:
            return
        self._set_state(TxnState.TERMINATED)
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()
        self.layer._remove(self)


class ClientTransaction(_Transaction):
    """A client transaction: owns request retransmission and timeouts."""

    role = "client"

    def __init__(
        self,
        layer: "TransactionLayer",
        request: SipRequest,
        destination: Address,
        on_response: ResponseFn,
        on_timeout: TimeoutFn | None,
    ) -> None:
        branch = request.top_via.branch if request.top_via else None
        if not branch:
            raise SipTransactionError("client transaction request needs a Via branch")
        method = request.cseq.method if request.cseq else request.method
        super().__init__(layer, (branch, method))
        self.request = request
        self.destination = destination
        self.on_response = on_response
        self.on_timeout = on_timeout
        self.is_invite = request.method == "INVITE"
        self._interval = T1
        self._retrans_timer: EventHandle | None = None
        self.state = TxnState.CALLING if self.is_invite else TxnState.TRYING

    def start(self) -> None:
        self._transmit()
        self._retrans_timer = self._after(self._interval, self._retransmit)
        self._after(TIMER_B if self.is_invite else TIMER_F, self._timed_out)

    def _transmit(self) -> None:
        self.layer.transport.send_request(self.request, self.destination)

    def _retransmit(self) -> None:
        if self.state in (TxnState.CALLING, TxnState.TRYING):
            self._transmit()
            self._interval = 2 * self._interval if self.is_invite else min(2 * self._interval, T2)
            self._retrans_timer = self._after(self._interval, self._retransmit)
        elif self.state is TxnState.PROCEEDING and not self.is_invite:
            self._transmit()
            self._retrans_timer = self._after(T2, self._retransmit)

    def _timed_out(self) -> None:
        if self.state in (TxnState.CALLING, TxnState.TRYING, TxnState.PROCEEDING):
            self.terminate()
            if self.on_timeout is not None:
                self.on_timeout()

    def cancel_timers(self) -> None:
        self.terminate()

    def receive_response(self, response: SipResponse) -> None:
        if self.state is TxnState.TERMINATED:
            return
        if response.is_provisional:
            if self.state in (TxnState.CALLING, TxnState.TRYING):
                self._set_state(TxnState.PROCEEDING)
                if self.is_invite:
                    # Timer A stops on the first provisional response
                    # (RFC 3261 17.1.1.2): the INVITE reached the far side,
                    # so retransmitting it while PROCEEDING is pure noise.
                    if self._retrans_timer is not None:
                        self._retrans_timer.cancel()
                        self._retrans_timer = None
                else:
                    # Timer E resets to T2 while PROCEEDING; cancel the
                    # pending one so there is exactly one retransmit chain.
                    if self._retrans_timer is not None:
                        self._retrans_timer.cancel()
                    self._retrans_timer = self._after(T2, self._retransmit)
            self.on_response(response)
            return
        if self.is_invite:
            if response.is_success:
                # 2xx terminates the client transaction; the TU sends the ACK.
                self.terminate()
                self.on_response(response)
                return
            if self.state is not TxnState.COMPLETED:
                self._set_state(TxnState.COMPLETED)
                self._send_non2xx_ack(response)
                self.on_response(response)
                self._after(TIMER_D, self.terminate)
            else:
                self._send_non2xx_ack(response)  # absorb retransmission
            return
        if self.state is not TxnState.COMPLETED:
            self._set_state(TxnState.COMPLETED)
            self.on_response(response)
            self._after(T4, self.terminate)

    def _send_non2xx_ack(self, response: SipResponse) -> None:
        """ACK for a non-2xx final response (RFC 3261 17.1.1.3)."""
        ack = SipRequest("ACK", self.request.uri)
        via = self.request.headers.get("Via")
        if via:
            ack.headers.add("Via", via)
        for name in ("From", "Call-Id", "Max-Forwards"):
            value = self.request.headers.get(name)
            if value:
                ack.headers.add(name, value)
        to_value = response.headers.get("To") or self.request.headers.get("To") or ""
        ack.headers.add("To", to_value)
        cseq = self.request.cseq
        if cseq:
            ack.headers.add("CSeq", f"{cseq.number} ACK")
        self.layer.transport.send_request(ack, self.destination)


class ServerTransaction(_Transaction):
    """A server transaction: absorbs retransmissions, resends final responses."""

    role = "server"

    def __init__(
        self, layer: "TransactionLayer", request: SipRequest, source: Address
    ) -> None:
        super().__init__(layer, request.transaction_key())
        self.request = request
        self.source = source
        self.is_invite = request.method == "INVITE"
        self.last_response: SipResponse | None = None
        self.state = TxnState.PROCEEDING if self.is_invite else TxnState.TRYING
        self._g_interval = T1

    def send_response(self, response: SipResponse) -> None:
        if self.state is TxnState.TERMINATED:
            return
        self.last_response = response
        self.layer.transport.send_response(response)
        if response.is_provisional:
            if not self.is_invite:
                self._set_state(TxnState.PROCEEDING)
            return
        if self.is_invite:
            if response.is_success:
                self._set_state(TxnState.ACCEPTED)
                self._after(TIMER_L, self.terminate)
            else:
                self._set_state(TxnState.COMPLETED)
                self._after(self._g_interval, self._retransmit_final)
                self._after(TIMER_H, self.terminate)
        else:
            self._set_state(TxnState.COMPLETED)
            self._after(TIMER_J, self.terminate)

    def _retransmit_final(self) -> None:
        if self.state is not TxnState.COMPLETED or self.last_response is None:
            return
        self.layer.transport.send_response(self.last_response)
        self._g_interval = min(2 * self._g_interval, T2)
        self._after(self._g_interval, self._retransmit_final)

    def receive_retransmission(self, request: SipRequest) -> None:
        if request.method == "ACK":
            if self.state is TxnState.COMPLETED:
                self._set_state(TxnState.CONFIRMED)
                self._after(T4, self.terminate)
            elif self.state is TxnState.ACCEPTED:
                self.terminate()
            return
        if self.last_response is not None and self.state in (
            TxnState.PROCEEDING,
            TxnState.COMPLETED,
            TxnState.ACCEPTED,
        ):
            self.layer.transport.send_response(self.last_response)


class TransactionLayer:
    """Routes messages between the transport and transactions/TU."""

    def __init__(self, transport: SipTransport, sim: Simulator) -> None:
        self.transport = transport
        self.sim = sim
        self._client: dict[tuple[str, str], ClientTransaction] = {}
        self._server: dict[tuple[str, str], ServerTransaction] = {}
        self.on_request: RequestFn | None = None
        self.on_stray_response: ResponseFn | None = None
        transport.set_receiver(self._on_message)

    # -- TU-facing API -----------------------------------------------------
    def send_request(
        self,
        request: SipRequest,
        destination: Address,
        on_response: ResponseFn,
        on_timeout: TimeoutFn | None = None,
    ) -> ClientTransaction:
        """Create and start a client transaction (always pushes a fresh Via —
        every hop adds its own, RFC 3261 sections 8.1.1.7 and 16.6/8)."""
        request.headers.insert_first("Via", str(self.transport.make_via(new_branch())))
        txn = ClientTransaction(self, request, destination, on_response, on_timeout)
        self._client[txn.key] = txn
        txn.start()
        return txn

    def send_stateless(self, request: SipRequest, destination: Address) -> None:
        """Transmit a request without creating a transaction (e.g. ACK)."""
        self.transport.send_request(request, destination)

    # -- dispatch -------------------------------------------------------------
    def _on_message(
        self, message: SipRequest | SipResponse, source: Address
    ) -> None:
        if isinstance(message, SipResponse):
            txn = self._client.get(message.transaction_key())
            if txn is not None:
                txn.receive_response(message)
            elif self.on_stray_response is not None:
                self.on_stray_response(message)
            return
        key = message.transaction_key()
        existing = self._server.get(key)
        if existing is not None:
            existing.receive_retransmission(message)
            return
        if message.method == "ACK":
            # ACK for a 2xx: a separate transaction, handed to the TU.
            if self.on_request is not None:
                self.on_request(message, None, source)
            return
        txn = ServerTransaction(self, message, source)
        self._server[key] = txn
        if self.on_request is not None:
            self.on_request(message, txn, source)

    def _remove(self, txn: _Transaction) -> None:
        if isinstance(txn, ClientTransaction):
            self._client.pop(txn.key, None)
        elif isinstance(txn, ServerTransaction):
            self._server.pop(txn.key, None)

    @property
    def active_transactions(self) -> int:
        return len(self._client) + len(self._server)
