"""SIP user agent core: registration, outgoing and incoming calls.

This is the engine inside the softphone (and inside Internet test
endpoints): it speaks plain RFC 3261 toward whatever outbound proxy it is
configured with, which in SIPHoc's architecture is always the local proxy
on the same node — the paper's "out-of-the-box VoIP application" contract.
"""

from __future__ import annotations

import enum
import itertools
import random
from typing import Callable

from repro.errors import SipDialogError
from repro.globalstate import registry
from repro.netsim.node import Node
from repro.sip.auth import Credentials
from repro.sip.dialog import Dialog, DialogKey, new_call_id, new_tag
from repro.sip.pidf import (
    AVAILABLE,
    PIDF_CONTENT_TYPE,
    PresenceStatus,
    build_pidf,
    parse_pidf,
)
from repro.sip.message import Headers, SipRequest, SipResponse
from repro.sip.sdp import SessionDescription, parse_sdp
from repro.sip.transaction import ServerTransaction, TransactionLayer
from repro.sip.transport import Address, SipTransport
from repro.sip.uri import NameAddr, SipUri

_rtp_ports = registry.counter("sip.ua.rtp_port", start=0)


def _allocate_rtp_port() -> int:
    return 16384 + (_rtp_ports.next() % 8192) * 2


#: Alternate (multihomed) contact advertised alongside the dialog contact,
#: so the peer knows where to reach us if the primary path dies (§5k).
ALT_CONTACT_HEADER = "P-Alt-Contact"
#: Marks a re-INVITE as a handover migration: the UAS refreshes the dialog
#: target from it and answers with its own alternate address.
HANDOVER_HEADER = "P-Handover"

#: Re-INVITE glare (RFC 3261 section 14.1) retry attempts before giving up.
MAX_GLARE_RETRIES = 6


class CallState(enum.Enum):
    INIT = "init"
    CALLING = "calling"
    RINGING = "ringing"
    ESTABLISHED = "established"
    TERMINATED = "terminated"
    FAILED = "failed"


class Call:
    """Shared state of one call leg."""

    def __init__(self, ua: "UserAgent", call_id: str) -> None:
        self.ua = ua
        self.call_id = call_id
        self.state = CallState.INIT
        self.dialog: Dialog | None = None
        self.local_sdp: SessionDescription | None = None
        self.remote_sdp: SessionDescription | None = None
        self.failure_status: int | None = None
        #: Retry-After seconds from a failure response (e.g. a 503 from an
        #: overloaded proxy, §5f); None when the response carried none.
        self.retry_after: int | None = None
        self.created_at = ua.sim.now
        self.established_at: float | None = None
        self.terminated_at: float | None = None
        self.on_state: Callable[["Call"], None] | None = None
        self.on_media: Callable[["Call"], None] | None = None
        #: Peer's multihomed fallback contact (from P-Alt-Contact), if any.
        self.remote_alt_contact: SipUri | None = None
        #: True while our own re-INVITE awaits a final response; an incoming
        #: re-INVITE in that window is glare and gets 491 (RFC 3261 §14.2).
        self._pending_reinvite = False
        #: Whether this side generated the dialog's Call-ID (RFC 3261 §14.1
        #: glare retry classes: owner 2.1-4.0 s, non-owner 0-2.0 s).
        self.is_call_id_owner = False

    @property
    def is_active(self) -> bool:
        return self.state in (CallState.CALLING, CallState.RINGING, CallState.ESTABLISHED)

    @property
    def remote_rtp_endpoint(self) -> tuple[str, int] | None:
        return self.remote_sdp.rtp_endpoint if self.remote_sdp else None

    def _set_state(self, state: CallState) -> None:
        if self.state == state:
            return
        self.state = state
        if state is CallState.ESTABLISHED and self.established_at is None:
            self.established_at = self.ua.sim.now
        if state in (CallState.TERMINATED, CallState.FAILED):
            self.terminated_at = self.ua.sim.now
            self.ua._forget_call(self)
        if self.on_state is not None:
            self.on_state(self)

    @property
    def media_direction(self) -> str:
        """Effective media direction after offer/answer (RFC 3264)."""
        directions = set()
        for sdp in (self.local_sdp, self.remote_sdp):
            if sdp is not None:
                directions.add(sdp.direction)
        if "inactive" in directions:
            return "inactive"
        if directions == {"sendonly", "recvonly"}:
            return "sendonly" if self.local_sdp.direction == "sendonly" else "recvonly"
        if "sendonly" in directions or "recvonly" in directions:
            return next(d for d in directions if d != "sendrecv")
        return "sendrecv"

    @property
    def on_hold(self) -> bool:
        return self.media_direction != "sendrecv"

    def update_media(
        self,
        sdp: SessionDescription,
        on_result: Callable[[bool], None] | None = None,
    ) -> None:
        """Send a re-INVITE with a new session description (hold/resume)."""
        self._send_reinvite(sdp, on_result=on_result)

    def migrate(
        self,
        sdp: SessionDescription,
        on_result: Callable[[bool], None] | None = None,
    ) -> None:
        """Re-anchor an established call onto a new local address (§5k).

        Sends a handover re-INVITE straight to the peer's alternate
        contact: the recorded route set and old remote target live on the
        radio path being abandoned, so both are refreshed up front. The
        RTP session itself is untouched — SSRC, sequence space and the
        receiver's jitter buffer survive the move.
        """
        if self.state is not CallState.ESTABLISHED or self.dialog is None:
            if on_result is not None:
                on_result(False)
            return
        target = self.remote_alt_contact
        if target is None:
            if on_result is not None:
                on_result(False)
            return
        self.dialog.remote_target = target
        self.dialog.route_set = []
        self._send_reinvite(sdp, on_result=on_result, handover=True)

    def _send_reinvite(
        self,
        sdp: SessionDescription,
        on_result: Callable[[bool], None] | None = None,
        handover: bool = False,
        _attempt: int = 0,
    ) -> None:
        """The shared UAC re-INVITE engine (hold/resume and handover)."""
        if self.state is not CallState.ESTABLISHED or self.dialog is None:
            if on_result is not None:
                on_result(False)
            return
        self.local_sdp = sdp
        self._pending_reinvite = True
        reinvite = self.dialog.create_request("INVITE")
        reinvite.headers.add("Contact", f"<{self.ua.contact_uri}>")
        if self.ua.alt_contact_uri is not None:
            reinvite.headers.add(ALT_CONTACT_HEADER, f"<{self.ua.alt_contact_uri}>")
        if handover:
            reinvite.headers.add(HANDOVER_HEADER, "1")
        reinvite.headers.add("Content-Type", "application/sdp")
        reinvite.body = sdp.serialize()
        cseq = reinvite.cseq

        def on_response(response: SipResponse) -> None:
            if response.is_provisional:
                return
            self._pending_reinvite = False
            if response.is_success:
                if response.body:
                    try:
                        self.remote_sdp = parse_sdp(response.body)
                    except Exception:
                        pass
                assert self.dialog is not None
                contact = response.contact
                if handover and contact is not None:
                    # Target refresh confirmed: subsequent in-dialog
                    # requests go direct to the peer's new contact.
                    self.dialog.remote_target = contact.uri
                self._adopt_alt_contact(response.headers.get(ALT_CONTACT_HEADER))
                ack = self.dialog.create_request(
                    "ACK", cseq_number=cseq.number if cseq else 1
                )
                self.ua.transactions.send_stateless(ack, self.dialog.next_hop())
                if self.on_media is not None:
                    self.on_media(self)
                if on_result is not None:
                    on_result(True)
                return
            if response.status == 491 and self.is_active:
                # Glare: the peer has its own re-INVITE in flight. Back off
                # per RFC 3261 §14.1 and re-send with a fresh CSeq.
                self.ua.node.stats.increment("sip.reinvite_glare_retry")
                if _attempt < MAX_GLARE_RETRIES:
                    self.ua.sim.schedule(
                        self.ua._glare_delay(self.is_call_id_owner),
                        self._send_reinvite,
                        self.local_sdp,
                        on_result,
                        handover,
                        _attempt + 1,
                    )
                    return
            if on_result is not None:
                on_result(False)

        def on_timeout() -> None:
            self._pending_reinvite = False
            if on_result is not None:
                on_result(False)

        self.ua.transactions.send_request(
            reinvite,
            self.dialog.next_hop(),
            on_response,
            on_timeout=on_timeout,
        )

    def _adopt_alt_contact(self, raw: str | None) -> None:
        if not raw:
            return
        try:
            self.remote_alt_contact = NameAddr.parse(raw).uri
        except Exception:
            pass

    def hold(self, on_result: Callable[[bool], None] | None = None) -> None:
        """Put the call on hold (media direction -> inactive)."""
        if self.local_sdp is None:
            if on_result is not None:
                on_result(False)
            return
        self.update_media(self.local_sdp.with_direction("inactive"), on_result)

    def resume(self, on_result: Callable[[bool], None] | None = None) -> None:
        """Take the call off hold (media direction -> sendrecv)."""
        if self.local_sdp is None:
            if on_result is not None:
                on_result(False)
            return
        self.update_media(self.local_sdp.with_direction("sendrecv"), on_result)

    def _handle_reinvite(self, request: SipRequest, txn: ServerTransaction | None) -> None:
        """UAS side of a mid-dialog INVITE: accept the new offer."""
        if self._pending_reinvite:
            # Glare (RFC 3261 §14.2): our own re-INVITE is still in flight.
            self.ua.node.stats.increment("sip.reinvite_glare_491")
            if txn is not None:
                txn.send_response(
                    request.create_response(
                        491, to_tag=self.dialog.local_tag if self.dialog else None
                    )
                )
            return
        handover = request.headers.get(HANDOVER_HEADER) is not None
        self._adopt_alt_contact(request.headers.get(ALT_CONTACT_HEADER))
        if request.body:
            try:
                self.remote_sdp = parse_sdp(request.body)
            except Exception:
                pass
        if handover and self.dialog is not None:
            # The peer moved interfaces: refresh the dialog target from its
            # new Contact and drop the recorded route set — the proxy chain
            # it names sits on the dead path.
            contact = request.contact
            if contact is not None:
                self.dialog.remote_target = contact.uri
            self.dialog.route_set = []
        # Mirror the offered direction in our answer (RFC 3264 hold rules).
        answer = self.local_sdp
        if answer is not None and handover and self.ua.alt_contact_uri is not None:
            # Answer from our own alternate address: the peer can no longer
            # reach the MANET address our original answer advertised.
            answer = answer.with_address(self.ua.alt_contact_uri.host)
        if answer is not None and self.remote_sdp is not None:
            offered = self.remote_sdp.direction
            if offered == "inactive":
                answer = answer.with_direction("inactive")
            elif offered == "sendonly":
                answer = answer.with_direction("recvonly")
            elif offered == "recvonly":
                answer = answer.with_direction("sendonly")
            else:
                answer = answer.with_direction("sendrecv")
        if answer is not None:
            self.local_sdp = answer
        if txn is not None:
            response = request.create_response(
                200, to_tag=self.dialog.local_tag if self.dialog else None
            )
            contact_uri = self.ua.contact_uri
            if handover and self.ua.alt_contact_uri is not None:
                contact_uri = self.ua.alt_contact_uri
            response.headers.add("Contact", f"<{contact_uri}>")
            if self.ua.alt_contact_uri is not None:
                response.headers.add(
                    ALT_CONTACT_HEADER, f"<{self.ua.alt_contact_uri}>"
                )
            if answer is not None:
                response.headers.add("Content-Type", "application/sdp")
                response.body = answer.serialize()
            txn.send_response(response)
        if self.on_media is not None:
            self.on_media(self)

    def hangup(self) -> None:
        """Send BYE (only valid on an established call)."""
        if self.state is not CallState.ESTABLISHED or self.dialog is None:
            self._set_state(CallState.TERMINATED)
            return
        bye = self.dialog.create_request("BYE")
        self.ua.transactions.send_request(
            bye,
            self.dialog.next_hop(),
            on_response=lambda response: self._set_state(CallState.TERMINATED),
            on_timeout=lambda: self._set_state(CallState.TERMINATED),
        )

    def _handle_bye(self, request: SipRequest, txn: ServerTransaction | None) -> None:
        if txn is not None:
            txn.send_response(request.create_response(200))
        self._set_state(CallState.TERMINATED)


class OutgoingCall(Call):
    """Caller side of an INVITE session."""

    def __init__(self, ua: "UserAgent", call_id: str, target: SipUri) -> None:
        super().__init__(ua, call_id)
        self.target = target
        self.is_call_id_owner = True
        self._invite: SipRequest | None = None
        self._txn = None

    def cancel(self) -> None:
        """Abort the call before it is answered."""
        if self.state not in (CallState.CALLING, CallState.RINGING):
            return
        if self._invite is None:
            self._set_state(CallState.TERMINATED)
            return
        cancel = SipRequest("CANCEL", self._invite.uri)
        via = self._invite.headers.get("Via")
        if via:
            cancel.headers.add("Via", via)
        for name in ("From", "To", "Call-Id", "Max-Forwards"):
            value = self._invite.headers.get(name)
            if value:
                cancel.headers.add(name, value)
        cseq = self._invite.cseq
        if cseq:
            cancel.headers.add("CSeq", f"{cseq.number} CANCEL")
        self.ua.transactions.send_stateless(cancel, self.ua._destination_for(self.target))

    def _on_response(self, response: SipResponse) -> None:
        if response.is_provisional:
            if response.status >= 180:
                self._set_state(CallState.RINGING)
            return
        if response.is_success:
            assert self._invite is not None
            try:
                self.dialog = Dialog.from_response(self._invite, response)
            except SipDialogError:
                self.failure_status = 500
                self._set_state(CallState.FAILED)
                return
            self.ua._register_dialog(self.dialog, self)
            self._adopt_alt_contact(response.headers.get(ALT_CONTACT_HEADER))
            if response.body:
                try:
                    self.remote_sdp = parse_sdp(response.body)
                except Exception:
                    self.remote_sdp = None
            self._send_ack(response)
            self._set_state(CallState.ESTABLISHED)
            return
        self.failure_status = response.status
        self.retry_after = response.retry_after
        self._set_state(CallState.FAILED)

    def _on_timeout(self) -> None:
        self.failure_status = 408
        self._set_state(CallState.FAILED)

    def _send_ack(self, response: SipResponse) -> None:
        assert self.dialog is not None and self._invite is not None
        cseq = self._invite.cseq
        ack = self.dialog.create_request("ACK", cseq_number=cseq.number if cseq else 1)
        ack.headers.insert_first("Via", str(self.ua.transport.make_via(new_tag())))
        self.ua.transactions.send_stateless(ack, self.dialog.next_hop())


class IncomingCall(Call):
    """Callee side of an INVITE session."""

    def __init__(
        self, ua: "UserAgent", request: SipRequest, txn: ServerTransaction
    ) -> None:
        super().__init__(ua, request.call_id or "")
        self.request = request
        self._txn = txn
        self.local_tag = new_tag()
        from_ = request.from_
        self.caller = from_.uri if from_ is not None else None
        self._adopt_alt_contact(request.headers.get(ALT_CONTACT_HEADER))
        if request.body:
            try:
                self.remote_sdp = parse_sdp(request.body)
            except Exception:
                self.remote_sdp = None
        self._set_state(CallState.RINGING)

    def ring(self) -> None:
        """Send 180 Ringing."""
        response = self.request.create_response(180, to_tag=self.local_tag)
        response.headers.add("Contact", f"<{self.ua.contact_uri}>")
        self._txn.send_response(response)

    def answer(self, sdp: SessionDescription | None = None) -> None:
        """Send 200 OK with an SDP answer; established once ACK arrives."""
        if sdp is None:
            if self.remote_sdp is not None:
                sdp = self.remote_sdp.answer(self.ua.transport.address, _allocate_rtp_port())
            else:
                sdp = SessionDescription.offer(self.ua.transport.address, _allocate_rtp_port())
        self.local_sdp = sdp
        self.dialog = Dialog.from_request(
            self.request, self.local_tag, self.ua.contact_uri
        )
        self.ua._register_dialog(self.dialog, self)
        response = self.request.create_response(200, to_tag=self.local_tag)
        response.headers.add("Contact", f"<{self.ua.contact_uri}>")
        if self.ua.alt_contact_uri is not None:
            response.headers.add(ALT_CONTACT_HEADER, f"<{self.ua.alt_contact_uri}>")
        response.headers.add("Content-Type", "application/sdp")
        response.body = sdp.serialize()
        self._txn.send_response(response)

    def reject(self, status: int = 486) -> None:
        response = self.request.create_response(status, to_tag=self.local_tag)
        self._txn.send_response(response)
        self.failure_status = status
        self._set_state(CallState.FAILED)

    def _on_ack(self) -> None:
        if self.state is CallState.RINGING and self.dialog is not None:
            self._set_state(CallState.ESTABLISHED)

    def _on_cancel(self) -> None:
        if self.state is CallState.RINGING:
            response = self.request.create_response(487, to_tag=self.local_tag)
            self._txn.send_response(response)
            self._set_state(CallState.TERMINATED)


RegistrationCallback = Callable[[bool, SipResponse | None], None]
InviteHandler = Callable[[IncomingCall], None]
MessageHandler = Callable[[str, SipUri], None]
MessageResultCallback = Callable[[bool, int | None], None]
NotifyHandler = Callable[["Subscription"], None]


class Subscription:
    """Client side of a presence subscription (RFC 3265/3856)."""

    def __init__(self, ua: "UserAgent", target: SipUri, expires: int) -> None:
        self.ua = ua
        self.target = target
        self.expires = expires
        self.call_id = new_call_id(ua.transport.address)
        self.dialog: Dialog | None = None
        self.active = False
        self.terminated = False
        self.status: PresenceStatus | None = None
        self.on_notify: NotifyHandler | None = None
        self._refresh_task = None

    def _start_refresh(self) -> None:
        if self._refresh_task is None and self.expires > 1:
            self._refresh_task = self.ua.sim.schedule_periodic(
                self.expires / 2, self._refresh, jitter=0.05
            )

    def _refresh(self) -> None:
        """Keep the subscription alive (in-dialog re-SUBSCRIBE)."""
        if self.terminated or self.dialog is None:
            return
        request = self.dialog.create_request("SUBSCRIBE")
        request.headers.add("Event", "presence")
        request.headers.add("Expires", str(self.expires))
        self.ua.transactions.send_request(
            request, self.dialog.next_hop(), lambda response: None
        )

    def terminate(self) -> None:
        """Unsubscribe (in-dialog SUBSCRIBE with Expires: 0)."""
        if self._refresh_task is not None:
            self._refresh_task.stop()
            self._refresh_task = None
        if self.terminated or self.dialog is None:
            self.terminated = True
            self.active = False
            return
        request = self.dialog.create_request("SUBSCRIBE")
        request.headers.add("Event", "presence")
        request.headers.add("Expires", "0")
        self.ua.transactions.send_request(
            request, self.dialog.next_hop(), lambda response: None
        )
        self.terminated = True
        self.active = False


class _Watcher:
    """Server side of a presence subscription: someone watching us."""

    def __init__(self, dialog: Dialog, expires_at: float) -> None:
        self.dialog = dialog
        self.expires_at = expires_at

    def is_active(self, now: float) -> bool:
        return now < self.expires_at


class UserAgent:
    """A SIP UA bound to a UDP port on a node."""

    def __init__(
        self,
        node: Node,
        aor: str | SipUri,
        port: int = 5070,
        display_name: str | None = None,
        outbound_proxy: Address | None = None,
        credentials: Credentials | None = None,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.aor = SipUri.parse(aor) if isinstance(aor, str) else aor
        self.display_name = display_name
        self.outbound_proxy = outbound_proxy
        self.credentials = credentials
        self.transport = SipTransport(node, port)
        self.transactions = TransactionLayer(self.transport, node.sim)
        self.transactions.on_request = self._on_request
        self._dialogs: dict[DialogKey, Call] = {}
        self._calls_by_id: dict[str, Call] = {}
        self.on_invite: InviteHandler | None = None
        self.on_message: MessageHandler | None = None
        self.presence: PresenceStatus = AVAILABLE
        self._watchers: dict[str, _Watcher] = {}  # by Call-ID
        self._subscriptions: dict[str, Subscription] = {}  # by Call-ID
        self.registered = False
        self.registration_expires: float | None = None
        self._register_cseq = itertools.count(1)
        #: Alternate contact advertised via P-Alt-Contact (§5k handover);
        #: set by the handover policy on multihomed nodes, None otherwise.
        self.alt_contact_uri: SipUri | None = None
        # Private integer-seeded RNG for RFC 3261 §14.1 glare timers: never
        # touches the shared simulator stream, so enabling handover leaves
        # every other draw sequence untouched.
        self._glare_rng = random.Random(
            ((node.sim.seed * 1_000_003 + node.node_id) * 131_071 + port) * 8_191 + 17
        )

    @property
    def contact_uri(self) -> SipUri:
        return SipUri(
            user=self.aor.user, host=self.transport.address, port=self.transport.port
        )

    def _glare_delay(self, owner: bool) -> float:
        """RFC 3261 §14.1 retry delay in 10 ms multiples from the private RNG."""
        lo, hi = (2.1, 4.0) if owner else (0.0, 2.0)
        steps = int(round((hi - lo) / 0.010))
        return lo + self._glare_rng.randrange(steps + 1) * 0.010

    def close(self) -> None:
        for subscription in list(self._subscriptions.values()):
            if subscription._refresh_task is not None:
                subscription._refresh_task.stop()
                subscription._refresh_task = None
        self._subscriptions.clear()
        self._watchers.clear()
        self.transport.close()

    # -- registration ------------------------------------------------------------
    def register(
        self,
        expires: int = 3600,
        registrar: Address | None = None,
        on_result: RegistrationCallback | None = None,
    ) -> None:
        """REGISTER the AOR with the registrar (default: outbound proxy).

        Answers one 401 digest challenge automatically when the UA has
        credentials configured.
        """
        destination = registrar or self.outbound_proxy
        if destination is None:
            raise SipDialogError("no registrar or outbound proxy configured")

        def attempt(authorization: str | None, already_tried_auth: bool) -> None:
            headers = Headers()
            identity = NameAddr(
                uri=self.aor.without_params(), display_name=self.display_name
            )
            headers.add("From", str(identity.with_tag(new_tag())))
            headers.add("To", str(identity))
            headers.add("Call-ID", new_call_id(self.transport.address))
            headers.add("CSeq", f"{next(self._register_cseq)} REGISTER")
            headers.add("Max-Forwards", "70")
            headers.add("Contact", f"<{self.contact_uri}>")
            headers.add("Expires", str(expires))
            if authorization is not None:
                headers.add("Authorization", authorization)
            request = SipRequest(
                "REGISTER", SipUri(user=None, host=self.aor.host), headers=headers
            )

            def on_response(response: SipResponse) -> None:
                if (
                    response.status == 401
                    and not already_tried_auth
                    and self.credentials is not None
                ):
                    challenge = response.headers.get("WWW-Authenticate")
                    if challenge:
                        answer = self.credentials.authorization_for(
                            challenge, "REGISTER", str(request.uri)
                        )
                        if answer is not None:
                            attempt(answer, True)
                            return
                self.registered = response.is_success and expires > 0
                if response.is_success:
                    self.registration_expires = self.sim.now + expires
                if on_result is not None:
                    on_result(response.is_success, response)

            def on_timeout() -> None:
                self.registered = False
                if on_result is not None:
                    on_result(False, None)

            self.transactions.send_request(request, destination, on_response, on_timeout)

        attempt(None, already_tried_auth=False)

    def unregister(self, on_result: RegistrationCallback | None = None) -> None:
        self.register(expires=0, on_result=on_result)

    # -- outgoing calls ----------------------------------------------------------------
    def call(
        self,
        target: str | SipUri,
        sdp: SessionDescription | None = None,
        on_state: Callable[[Call], None] | None = None,
    ) -> OutgoingCall:
        """Place a call to ``target`` (an AOR such as ``sip:bob@voicehoc.ch``)."""
        target_uri = SipUri.parse(target) if isinstance(target, str) else target
        call_id = new_call_id(self.transport.address)
        call = OutgoingCall(self, call_id, target_uri)
        call.on_state = on_state
        if sdp is None:
            sdp = SessionDescription.offer(self.transport.address, _allocate_rtp_port())
        call.local_sdp = sdp

        headers = Headers()
        identity = NameAddr(uri=self.aor.without_params(), display_name=self.display_name)
        headers.add("From", str(identity.with_tag(new_tag())))
        headers.add("To", str(NameAddr(uri=target_uri.without_params())))
        headers.add("Call-ID", call_id)
        headers.add("CSeq", "1 INVITE")
        headers.add("Max-Forwards", "70")
        headers.add("Contact", f"<{self.contact_uri}>")
        if self.alt_contact_uri is not None:
            headers.add(ALT_CONTACT_HEADER, f"<{self.alt_contact_uri}>")
        headers.add("Content-Type", "application/sdp")
        invite = SipRequest("INVITE", target_uri.without_params(), headers=headers)
        invite.body = sdp.serialize()
        call._invite = invite
        self._calls_by_id[call_id] = call
        call._set_state(CallState.CALLING)
        call._txn = self.transactions.send_request(
            invite,
            self._destination_for(target_uri),
            on_response=call._on_response,
            on_timeout=call._on_timeout,
        )
        return call

    # -- presence (RFC 3265 / RFC 3856) -----------------------------------------------
    def set_presence(self, status: PresenceStatus) -> None:
        """Update our presence document and NOTIFY every active watcher."""
        self.presence = status
        now = self.sim.now
        for call_id, watcher in list(self._watchers.items()):
            if watcher.is_active(now):
                self._send_notify(watcher, "active")
            else:
                del self._watchers[call_id]

    @property
    def watcher_count(self) -> int:
        now = self.sim.now
        return sum(1 for watcher in self._watchers.values() if watcher.is_active(now))

    def subscribe(
        self,
        target: str | SipUri,
        on_notify: NotifyHandler | None = None,
        expires: int = 300,
    ) -> Subscription:
        """Subscribe to ``target``'s presence; NOTIFYs arrive via callback."""
        target_uri = SipUri.parse(target) if isinstance(target, str) else target
        subscription = Subscription(self, target_uri, expires)
        subscription.on_notify = on_notify
        self._subscriptions[subscription.call_id] = subscription

        headers = Headers()
        identity = NameAddr(uri=self.aor.without_params(), display_name=self.display_name)
        headers.add("From", str(identity.with_tag(new_tag())))
        headers.add("To", str(NameAddr(uri=target_uri.without_params())))
        headers.add("Call-ID", subscription.call_id)
        headers.add("CSeq", "1 SUBSCRIBE")
        headers.add("Max-Forwards", "70")
        headers.add("Contact", f"<{self.contact_uri}>")
        headers.add("Event", "presence")
        headers.add("Expires", str(expires))
        request = SipRequest("SUBSCRIBE", target_uri.without_params(), headers=headers)

        def on_response(response: SipResponse) -> None:
            if not response.is_success:
                subscription.terminated = True
                self._subscriptions.pop(subscription.call_id, None)
                return
            try:
                subscription.dialog = Dialog.from_response(request, response)
            except SipDialogError:
                return
            subscription.active = True
            subscription._start_refresh()

        self.transactions.send_request(
            request,
            self._destination_for(target_uri),
            on_response,
            on_timeout=lambda: setattr(subscription, "terminated", True),
        )
        return subscription

    def _handle_subscribe(self, request: SipRequest, txn: ServerTransaction | None) -> None:
        event = (request.headers.get("Event") or "").lower()
        if event != "presence":
            if txn is not None:
                txn.send_response(request.create_response(489, "Bad Event"))
            return
        raw_expires = request.headers.get("Expires")
        try:
            expires = int(raw_expires) if raw_expires is not None else 300
        except ValueError:
            expires = 300
        to = request.to
        if to is not None and to.tag is not None:
            # In-dialog refresh or termination.
            watcher = self._watchers.get(request.call_id or "")
            if watcher is None:
                if txn is not None:
                    txn.send_response(request.create_response(481))
                return
            if expires == 0:
                if txn is not None:
                    txn.send_response(request.create_response(200))
                self._send_notify(watcher, "terminated")
                self._watchers.pop(request.call_id or "", None)
            else:
                watcher.expires_at = self.sim.now + expires
                if txn is not None:
                    txn.send_response(request.create_response(200))
            return
        local_tag = new_tag()
        dialog = Dialog.from_request(request, local_tag, self.contact_uri)
        watcher = _Watcher(dialog=dialog, expires_at=self.sim.now + max(1, expires))
        self._watchers[request.call_id or ""] = watcher
        if txn is not None:
            response = request.create_response(200, to_tag=local_tag)
            response.headers.add("Contact", f"<{self.contact_uri}>")
            response.headers.add("Expires", str(expires))
            txn.send_response(response)
        # RFC 3265: an immediate NOTIFY with the current state.
        self.sim.schedule(0.0, self._send_notify, watcher, "active")

    def _send_notify(self, watcher: _Watcher, substate: str) -> None:
        notify = watcher.dialog.create_request("NOTIFY")
        notify.headers.add("Event", "presence")
        remaining = max(0, int(watcher.expires_at - self.sim.now))
        notify.headers.add("Subscription-State", f"{substate};expires={remaining}")
        notify.headers.add("Content-Type", PIDF_CONTENT_TYPE)
        notify.body = build_pidf(self.aor.address_of_record, self.presence)
        call_id = watcher.dialog.call_id

        def on_response(response: SipResponse) -> None:
            if response.status == 481:  # watcher is gone
                self._watchers.pop(call_id, None)

        self.transactions.send_request(
            notify, watcher.dialog.next_hop(), on_response,
            on_timeout=lambda: self._watchers.pop(call_id, None),
        )

    def _handle_notify(self, request: SipRequest, txn: ServerTransaction | None) -> None:
        subscription = self._subscriptions.get(request.call_id or "")
        if subscription is None:
            if txn is not None:
                txn.send_response(request.create_response(481))
            return
        if txn is not None:
            txn.send_response(request.create_response(200))
        if request.body:
            try:
                _, status = parse_pidf(request.body)
                subscription.status = status
            except SipParseError:
                pass
        substate_raw = (request.headers.get("Subscription-State") or "active").lower()
        if substate_raw.startswith("terminated"):
            subscription.terminated = True
            subscription.active = False
            self._subscriptions.pop(subscription.call_id, None)
        else:
            subscription.active = True
        if subscription.on_notify is not None:
            subscription.on_notify(subscription)

    # -- instant messaging (RFC 3428 pager mode) ------------------------------------
    def send_message(
        self,
        target: str | SipUri,
        text: str,
        on_result: MessageResultCallback | None = None,
    ) -> None:
        """Send a pager-mode instant message (SIP MESSAGE) to ``target``."""
        target_uri = SipUri.parse(target) if isinstance(target, str) else target
        headers = Headers()
        identity = NameAddr(uri=self.aor.without_params(), display_name=self.display_name)
        headers.add("From", str(identity.with_tag(new_tag())))
        headers.add("To", str(NameAddr(uri=target_uri.without_params())))
        headers.add("Call-ID", new_call_id(self.transport.address))
        headers.add("CSeq", "1 MESSAGE")
        headers.add("Max-Forwards", "70")
        headers.add("Content-Type", "text/plain")
        request = SipRequest("MESSAGE", target_uri.without_params(), headers=headers)
        request.body = text.encode("utf-8")

        def on_response(response: SipResponse) -> None:
            if on_result is not None:
                on_result(response.is_success, response.status)

        def on_timeout() -> None:
            if on_result is not None:
                on_result(False, None)

        self.transactions.send_request(
            request, self._destination_for(target_uri), on_response, on_timeout
        )

    def _handle_message(self, request: SipRequest, txn: ServerTransaction | None) -> None:
        if self.on_message is None:
            if txn is not None:
                txn.send_response(request.create_response(405))
            return
        try:
            text = request.body.decode("utf-8")
        except UnicodeDecodeError:
            if txn is not None:
                txn.send_response(request.create_response(400))
            return
        from_ = request.from_
        sender = from_.uri if from_ is not None else SipUri(user=None, host="unknown")
        if txn is not None:
            txn.send_response(request.create_response(200))
        self.on_message(text, sender)

    def _destination_for(self, target: SipUri) -> Address:
        if self.outbound_proxy is not None:
            return self.outbound_proxy
        return (target.host, target.effective_port())

    # -- incoming requests -----------------------------------------------------------------
    def _on_request(
        self, request: SipRequest, txn: ServerTransaction | None, source: Address
    ) -> None:
        method = request.method
        if method == "INVITE" and txn is not None:
            to = request.to
            if to is not None and to.tag is not None:
                # Mid-dialog re-INVITE (hold/resume/session refresh).
                existing = self._find_dialog_call(request)
                if existing is not None:
                    existing._handle_reinvite(request, txn)
                else:
                    txn.send_response(request.create_response(481))
                return
            call = IncomingCall(self, request, txn)
            self._calls_by_id[call.call_id] = call
            txn.send_response(request.create_response(100))
            if self.on_invite is not None:
                self.on_invite(call)
            else:
                call.reject(480)
            return
        if method == "ACK":
            call = self._find_dialog_call(request)
            if isinstance(call, IncomingCall):
                call._on_ack()
            return
        if method == "CANCEL":
            if txn is not None:
                txn.send_response(request.create_response(200))
            call = self._calls_by_id.get(request.call_id or "")
            if isinstance(call, IncomingCall):
                call._on_cancel()
            return
        if method == "BYE":
            call = self._find_dialog_call(request)
            if call is not None:
                call._handle_bye(request, txn)
            elif txn is not None:
                txn.send_response(request.create_response(481))
            return
        if method == "OPTIONS" and txn is not None:
            txn.send_response(request.create_response(200))
            return
        if method == "MESSAGE":
            self._handle_message(request, txn)
            return
        if method == "SUBSCRIBE":
            self._handle_subscribe(request, txn)
            return
        if method == "NOTIFY":
            self._handle_notify(request, txn)
            return
        if txn is not None:
            txn.send_response(request.create_response(501))

    # -- dialog registry ---------------------------------------------------------------------
    def _register_dialog(self, dialog: Dialog, call: Call) -> None:
        self._dialogs[dialog.key] = call

    def _find_dialog_call(self, request: SipRequest) -> Call | None:
        from_ = request.from_
        to = request.to
        call_id = request.call_id or ""
        remote_tag = from_.tag if from_ is not None else None
        local_tag = to.tag if to is not None else None
        return self._dialogs.get((call_id, local_tag or "", remote_tag or ""))

    def _forget_call(self, call: Call) -> None:
        self._calls_by_id.pop(call.call_id, None)
        if call.dialog is not None:
            self._dialogs.pop(call.dialog.key, None)

    @property
    def active_calls(self) -> list[Call]:
        return [call for call in self._calls_by_id.values() if call.is_active]
