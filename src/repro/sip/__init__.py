"""A from-scratch SIP stack (RFC 3261 subset) over the simulated network.

Layers: URI/message grammar, SDP, UDP transport, transaction state machines
with retransmission timers, dialogs, a UA core, a registrar, and a generic
stateful proxy engine with pluggable routing — everything SIPHoc's
components and the Internet providers are built from.
"""

from repro.sip.auth import (
    Credentials,
    DigestAuthenticator,
    digest_response,
    make_authorization,
    make_challenge,
    parse_auth_params,
)
from repro.sip.dialog import Dialog, DialogKey, new_call_id, new_tag
from repro.sip.message import (
    CSeq,
    Headers,
    SipMessage,
    SipRequest,
    SipResponse,
    Via,
    parse_message,
)
from repro.sip.pidf import (
    AVAILABLE,
    OFFLINE,
    ON_THE_PHONE,
    PIDF_CONTENT_TYPE,
    PresenceStatus,
    build_pidf,
    parse_pidf,
)
from repro.sip.proxy import (
    AdmissionControl,
    ProxyCore,
    ProxyLeg,
    RouteFn,
    RoutingContext,
)
from repro.sip.registrar import Binding, LocationService, Registrar
from repro.sip.sdp import (
    MediaDescription,
    SessionDescription,
    parse_sdp,
)
from repro.sip.transaction import (
    ClientTransaction,
    ServerTransaction,
    TransactionLayer,
)
from repro.sip.transport import Address, SipTransport, new_branch
from repro.sip.ua import (
    Call,
    CallState,
    IncomingCall,
    OutgoingCall,
    Subscription,
    UserAgent,
)
from repro.sip.uri import NameAddr, SipUri

__all__ = [
    "AVAILABLE",
    "Address",
    "AdmissionControl",
    "Binding",
    "CSeq",
    "Call",
    "CallState",
    "ClientTransaction",
    "Credentials",
    "Dialog",
    "DigestAuthenticator",
    "DialogKey",
    "Headers",
    "IncomingCall",
    "LocationService",
    "MediaDescription",
    "NameAddr",
    "OFFLINE",
    "ON_THE_PHONE",
    "OutgoingCall",
    "PIDF_CONTENT_TYPE",
    "PresenceStatus",
    "ProxyCore",
    "ProxyLeg",
    "Registrar",
    "RouteFn",
    "RoutingContext",
    "ServerTransaction",
    "SessionDescription",
    "SipMessage",
    "SipRequest",
    "SipResponse",
    "SipTransport",
    "SipUri",
    "Subscription",
    "TransactionLayer",
    "UserAgent",
    "Via",
    "build_pidf",
    "digest_response",
    "make_authorization",
    "make_challenge",
    "new_branch",
    "new_call_id",
    "new_tag",
    "parse_auth_params",
    "parse_message",
    "parse_pidf",
    "parse_sdp",
]
