"""PIDF presence documents (RFC 3863 subset).

SIP presence (SUBSCRIBE/NOTIFY with ``Event: presence``) carries an XML
Presence Information Data Format body. We build and parse the minimal
profile: one tuple with a basic open/closed status and an optional note.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import SipParseError

PIDF_CONTENT_TYPE = "application/pidf+xml"


@dataclass(frozen=True)
class PresenceStatus:
    """A presentity's state: basic open/closed plus a human-readable note."""

    basic: str = "open"  # "open" | "closed"
    note: str = ""

    def __post_init__(self) -> None:
        if self.basic not in ("open", "closed"):
            raise SipParseError(f"invalid basic presence status {self.basic!r}")

    @property
    def available(self) -> bool:
        return self.basic == "open"


OFFLINE = PresenceStatus(basic="closed")
AVAILABLE = PresenceStatus(basic="open")
ON_THE_PHONE = PresenceStatus(basic="open", note="on the phone")


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _unescape(text: str) -> str:
    return (
        text.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", '"')
        .replace("&amp;", "&")
    )


def build_pidf(entity: str, status: PresenceStatus) -> bytes:
    """Serialize a presence document for ``entity`` (a SIP AOR)."""
    note = f"<note>{_escape(status.note)}</note>" if status.note else ""
    document = (
        '<?xml version="1.0" encoding="UTF-8"?>'
        f'<presence xmlns="urn:ietf:params:xml:ns:pidf" entity="{_escape(entity)}">'
        '<tuple id="t1">'
        f"<status><basic>{status.basic}</basic></status>"
        f"{note}"
        "</tuple>"
        "</presence>"
    )
    return document.encode("utf-8")


_ENTITY_RE = re.compile(r'<presence[^>]*\sentity="([^"]*)"')
_BASIC_RE = re.compile(r"<basic>\s*(open|closed)\s*</basic>")
_NOTE_RE = re.compile(r"<note>(.*?)</note>", re.DOTALL)


def parse_pidf(body: bytes) -> tuple[str, PresenceStatus]:
    """Parse a presence document into (entity, status)."""
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SipParseError("PIDF body is not valid UTF-8") from exc
    entity_match = _ENTITY_RE.search(text)
    basic_match = _BASIC_RE.search(text)
    if entity_match is None or basic_match is None:
        raise SipParseError("malformed PIDF document")
    note_match = _NOTE_RE.search(text)
    return (
        _unescape(entity_match.group(1)),
        PresenceStatus(
            basic=basic_match.group(1),
            note=_unescape(note_match.group(1)) if note_match else "",
        ),
    )
