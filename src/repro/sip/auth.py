"""SIP digest authentication (RFC 3261 section 22 / RFC 2617 subset).

Real SIP providers — including the three the paper tested against —
challenge REGISTERs with ``401 Unauthorized`` and expect an MD5 digest
``Authorization`` header. The UA core and the SIPHoc proxy's upstream
registration both implement the challenge/response dance; the provider
side issues nonces and verifies responses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.globalstate import registry

_nonce_counter = registry.counter("sip.auth.nonce", start=1)


def _md5(text: str) -> str:
    return hashlib.md5(text.encode("utf-8")).hexdigest()


def digest_response(
    username: str, realm: str, password: str, method: str, uri: str, nonce: str
) -> str:
    """RFC 2617 MD5 digest: H(H(A1):nonce:H(A2))."""
    ha1 = _md5(f"{username}:{realm}:{password}")
    ha2 = _md5(f"{method}:{uri}")
    return _md5(f"{ha1}:{nonce}:{ha2}")


def parse_auth_params(value: str) -> dict[str, str]:
    """Parse a ``Digest k="v", k2=v2`` header value into a dict."""
    value = value.strip()
    if value.lower().startswith("digest"):
        value = value[len("digest") :].strip()
    params: dict[str, str] = {}
    for chunk in _split_params(value):
        if "=" not in chunk:
            continue
        key, raw = chunk.split("=", 1)
        key = key.strip().lower()
        if key:
            params[key] = raw.strip().strip('"')
    return params


def _split_params(text: str) -> list[str]:
    """Split on commas that are not inside quoted strings."""
    parts: list[str] = []
    current = ""
    in_quotes = False
    for char in text:
        if char == '"':
            in_quotes = not in_quotes
            current += char
        elif char == "," and not in_quotes:
            parts.append(current)
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current)
    return parts


def make_challenge(realm: str, nonce: str) -> str:
    """Build a WWW-Authenticate header value."""
    return f'Digest realm="{realm}", nonce="{nonce}", algorithm=MD5'


def make_authorization(
    username: str, realm: str, nonce: str, uri: str, response: str
) -> str:
    """Build an Authorization header value."""
    return (
        f'Digest username="{username}", realm="{realm}", nonce="{nonce}", '
        f'uri="{uri}", response="{response}", algorithm=MD5'
    )


@dataclass(frozen=True)
class Credentials:
    """A SIP account's authentication material."""

    username: str
    password: str

    def authorization_for(
        self, challenge_value: str, method: str, uri: str, realm_hint: str | None = None
    ) -> str | None:
        """Answer a WWW-Authenticate challenge; None if it is unusable."""
        params = parse_auth_params(challenge_value)
        realm = params.get("realm", realm_hint or "")
        nonce = params.get("nonce")
        if not nonce:
            return None
        response = digest_response(
            self.username, realm, self.password, method, uri, nonce
        )
        return make_authorization(self.username, realm, nonce, uri, response)


class DigestAuthenticator:
    """Server-side digest verification with nonce lifecycle."""

    NONCE_LIFETIME = 300.0

    def __init__(self, realm: str) -> None:
        self.realm = realm
        self._passwords: dict[str, str] = {}
        self._nonces: dict[str, float] = {}

    def add_user(self, username: str, password: str) -> None:
        self._passwords[username.lower()] = password

    def remove_user(self, username: str) -> None:
        self._passwords.pop(username.lower(), None)

    def has_user(self, username: str) -> bool:
        return username.lower() in self._passwords

    def challenge(self, now: float) -> str:
        """Issue a fresh nonce and build the WWW-Authenticate value."""
        nonce = f"n{_nonce_counter.next():08x}"
        self._nonces[nonce] = now + self.NONCE_LIFETIME
        if len(self._nonces) > 1024:
            self._nonces = {n: t for n, t in self._nonces.items() if t > now}
        return make_challenge(self.realm, nonce)

    def verify(self, authorization_value: str, method: str, now: float) -> bool:
        """Check an Authorization header against known users and nonces."""
        params = parse_auth_params(authorization_value)
        username = params.get("username", "")
        nonce = params.get("nonce", "")
        uri = params.get("uri", "")
        provided = params.get("response", "")
        password = self._passwords.get(username.lower())
        if password is None:
            return False
        if self._nonces.get(nonce, 0.0) <= now:
            return False  # unknown or expired nonce
        # The digest is computed over the *verbatim* username the client
        # sent (account lookup alone is case-insensitive).
        expected = digest_response(
            username, params.get("realm", self.realm), password, method, uri, nonce
        )
        return provided == expected
