"""SIP message grammar: headers, requests, responses (RFC 3261 subset).

Messages serialize to and parse from real RFC 3261 wire text, so everything
measured on the simulated air interface has honest sizes, and the packet
analyzer can dissect capture traces exactly as Wireshark does in Figure 5
of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SipParseError
from repro.sip.uri import NameAddr, SipUri

SIP_VERSION = "SIP/2.0"
CRLF = "\r\n"

METHODS = (
    "INVITE", "ACK", "BYE", "CANCEL", "REGISTER", "OPTIONS", "INFO", "MESSAGE",
    "SUBSCRIBE", "NOTIFY",
)

#: Methods whose 2xx responses create a dialog (and echo Record-Route).
DIALOG_FORMING_METHODS = ("INVITE", "SUBSCRIBE")

REASON_PHRASES = {
    100: "Trying",
    180: "Ringing",
    183: "Session Progress",
    200: "OK",
    202: "Accepted",
    301: "Moved Permanently",
    302: "Moved Temporarily",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    407: "Proxy Authentication Required",
    408: "Request Timeout",
    480: "Temporarily Unavailable",
    481: "Call/Transaction Does Not Exist",
    482: "Loop Detected",
    483: "Too Many Hops",
    486: "Busy Here",
    487: "Request Terminated",
    500: "Server Internal Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Server Time-out",
    603: "Decline",
}

_CANONICAL_CASE = {
    "call-id": "Call-ID",
    "cseq": "CSeq",
    "www-authenticate": "WWW-Authenticate",
    "mime-version": "MIME-Version",
}


def canonical_header_name(name: str) -> str:
    lower = name.lower()
    if lower in _CANONICAL_CASE:
        return _CANONICAL_CASE[lower]
    return "-".join(part.capitalize() for part in lower.split("-"))


class Headers:
    """An ordered, case-insensitive multimap of SIP header fields.

    ``version`` increments on every mutation; :meth:`SipMessage.serialize`
    uses it to memoize the wire form between mutations.
    """

    def __init__(self, items: list[tuple[str, str]] | None = None) -> None:
        self._items: list[tuple[str, str]] = []
        self._version = 0
        for name, value in items or []:
            self.add(name, value)

    @property
    def version(self) -> int:
        """Mutation counter (serialization-cache invalidation key)."""
        return self._version

    def add(self, name: str, value: str) -> None:
        self._items.append((canonical_header_name(name), value.strip()))
        self._version += 1

    def insert_first(self, name: str, value: str) -> None:
        """Insert a header before existing fields of the same name (Via push)."""
        canonical = canonical_header_name(name)
        self._version += 1
        for index, (existing, _) in enumerate(self._items):
            if existing == canonical:
                self._items.insert(index, (canonical, value.strip()))
                return
        self._items.append((canonical, value.strip()))

    def get(self, name: str) -> str | None:
        canonical = canonical_header_name(name)
        for existing, value in self._items:
            if existing == canonical:
                return value
        return None

    def get_all(self, name: str) -> list[str]:
        canonical = canonical_header_name(name)
        return [value for existing, value in self._items if existing == canonical]

    def set(self, name: str, value: str) -> None:
        """Replace all fields of this name with a single one (in place)."""
        canonical = canonical_header_name(name)
        replaced = False
        out = []
        for existing, old_value in self._items:
            if existing != canonical:
                out.append((existing, old_value))
            elif not replaced:
                out.append((canonical, value.strip()))
                replaced = True
        if not replaced:
            out.append((canonical, value.strip()))
        self._items = out
        self._version += 1

    def remove(self, name: str) -> None:
        canonical = canonical_header_name(name)
        self._items = [(n, v) for n, v in self._items if n != canonical]
        self._version += 1

    def extend_last(self, name: str, continuation: str) -> None:
        """Append folded-continuation text to the last field named ``name``.

        Supports obsolete RFC 3261 header line folding during parsing.
        Raises :class:`KeyError` if no field of that name exists.
        """
        canonical = canonical_header_name(name)
        for index in range(len(self._items) - 1, -1, -1):
            existing, value = self._items[index]
            if existing == canonical:
                self._items[index] = (canonical, f"{value} {continuation.strip()}")
                self._version += 1
                return
        raise KeyError(name)

    def bump_version(self) -> None:
        """Invalidate serialization caches keyed on :attr:`version`.

        Escape hatch for callers that changed header-derived state in a way
        the mutator methods cannot see; prefer the mutators themselves.
        """
        self._version += 1

    def remove_first(self, name: str) -> str | None:
        canonical = canonical_header_name(name)
        for index, (existing, value) in enumerate(self._items):
            if existing == canonical:
                del self._items[index]
                self._version += 1
                return value
        return None

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def items(self) -> list[tuple[str, str]]:
        return list(self._items)

    def copy(self) -> "Headers":
        return Headers(list(self._items))

    def __len__(self) -> int:
        return len(self._items)


@dataclass
class Via:
    """One Via header value: ``SIP/2.0/UDP host:port;branch=...``."""

    host: str
    port: int = 5060
    branch: str | None = None
    transport: str = "UDP"
    params: dict[str, str | None] = field(default_factory=dict)

    @classmethod
    def parse(cls, text: str) -> "Via":
        text = text.strip()
        try:
            protocol, rest = text.split(None, 1)
        except ValueError as exc:
            raise SipParseError(f"malformed Via: {text!r}") from exc
        parts = protocol.split("/")
        if len(parts) != 3 or parts[0].upper() != "SIP":
            raise SipParseError(f"malformed Via protocol: {text!r}")
        transport = parts[2].upper()
        params: dict[str, str | None] = {}
        if ";" in rest:
            hostport, param_text = rest.split(";", 1)
            for chunk in param_text.split(";"):
                chunk = chunk.strip()
                if not chunk:
                    continue
                if "=" in chunk:
                    key, value = chunk.split("=", 1)
                    params[key.lower()] = value
                else:
                    params[chunk.lower()] = None
        else:
            hostport = rest
        hostport = hostport.strip()
        if ":" in hostport:
            host, port_text = hostport.rsplit(":", 1)
            try:
                port = int(port_text)
            except ValueError as exc:
                raise SipParseError(f"invalid Via port: {text!r}") from exc
        else:
            host, port = hostport, 5060
        branch = params.pop("branch", None)
        return cls(host=host, port=port, branch=branch, transport=transport, params=params)

    def __str__(self) -> str:
        out = f"SIP/2.0/{self.transport} {self.host}:{self.port}"
        if self.branch:
            out += f";branch={self.branch}"
        for key, value in self.params.items():
            out += f";{key}" if value is None else f";{key}={value}"
        return out


@dataclass
class CSeq:
    number: int
    method: str

    @classmethod
    def parse(cls, text: str) -> "CSeq":
        try:
            number_text, method = text.split()
            return cls(number=int(number_text), method=method.upper())
        except ValueError as exc:
            raise SipParseError(f"malformed CSeq: {text!r}") from exc

    def __str__(self) -> str:
        return f"{self.number} {self.method}"


class SipMessage:
    """Shared behaviour of requests and responses."""

    def __init__(self, headers: Headers | None = None, body: bytes = b"") -> None:
        self.headers = headers if headers is not None else Headers()
        self.body = body
        self._wire: bytes | None = None
        self._wire_key: tuple[int, str, bytes] | None = None

    # -- typed header accessors -------------------------------------------------
    @property
    def call_id(self) -> str | None:
        return self.headers.get("Call-ID")

    @property
    def cseq(self) -> CSeq | None:
        raw = self.headers.get("CSeq")
        return CSeq.parse(raw) if raw else None

    @property
    def from_(self) -> NameAddr | None:
        raw = self.headers.get("From")
        return NameAddr.parse(raw) if raw else None

    @property
    def to(self) -> NameAddr | None:
        raw = self.headers.get("To")
        return NameAddr.parse(raw) if raw else None

    @property
    def contact(self) -> NameAddr | None:
        raw = self.headers.get("Contact")
        return NameAddr.parse(raw) if raw else None

    @property
    def retry_after(self) -> int | None:
        """Retry-After delay in whole seconds (RFC 3261 20.33), or ``None``.

        Tolerant by design: a missing header, garbage, or a negative value
        all read as "no usable Retry-After" rather than raising — overload
        responses come from arbitrary remote stacks. Comments and the
        ``;duration=...`` parameter are ignored, only the leading
        delta-seconds matter.
        """
        raw = self.headers.get("Retry-After")
        if raw is None:
            return None
        value = raw.split(";", 1)[0].split("(", 1)[0].strip()
        if not value.isdigit():
            return None
        return int(value)

    def set_retry_after(self, seconds: int) -> None:
        """Set the Retry-After header to a whole number of seconds."""
        self.headers.set("Retry-After", str(max(0, int(seconds))))

    @property
    def top_via(self) -> Via | None:
        raw = self.headers.get("Via")
        return Via.parse(raw) if raw else None

    @property
    def vias(self) -> list[Via]:
        return [Via.parse(raw) for raw in self.headers.get_all("Via")]

    def record_routes(self) -> list[NameAddr]:
        return [NameAddr.parse(raw) for raw in self.headers.get_all("Record-Route")]

    def routes(self) -> list[NameAddr]:
        return [NameAddr.parse(raw) for raw in self.headers.get_all("Route")]

    def transaction_key(self) -> tuple[str, str]:
        """RFC 3261 (17.1.3/17.2.3) matching key: top branch + CSeq method."""
        via = self.top_via
        cseq = self.cseq
        branch = via.branch if via and via.branch else ""
        method = cseq.method if cseq else ""
        if method == "ACK":
            method = "INVITE"
        return (branch, method)

    # -- serialization -------------------------------------------------------------
    def _start_line(self) -> str:
        raise NotImplementedError

    def serialize(self) -> bytes:
        """Wire form of the message.

        Memoized: re-serializing an unmodified message (transaction-layer
        retransmissions, per-hop transport sends) returns the cached bytes.
        Any header mutation (tracked by :attr:`Headers.version`), body
        swap, or start-line change invalidates the cache.
        """
        start_line = self._start_line()
        key = (self.headers.version, start_line, self.body)
        if self._wire is not None and key == self._wire_key:
            return self._wire
        self.headers.set("Content-Length", str(len(self.body)))
        lines = [start_line]
        lines.extend(f"{name}: {value}" for name, value in self.headers.items())
        head = CRLF.join(lines) + CRLF + CRLF
        self._wire = head.encode("utf-8") + self.body
        # Record the post-Content-Length headers version so the next
        # unmutated serialize() hits the cache.
        self._wire_key = (self.headers.version, start_line, self.body)
        return self._wire

    def __bytes__(self) -> bytes:
        return self.serialize()


class SipRequest(SipMessage):
    """A SIP request (start line ``METHOD uri SIP/2.0``)."""

    def __init__(
        self,
        method: str,
        uri: SipUri | str,
        headers: Headers | None = None,
        body: bytes = b"",
    ) -> None:
        super().__init__(headers, body)
        self.method = method.upper()
        self.uri = SipUri.parse(uri) if isinstance(uri, str) else uri

    def _start_line(self) -> str:
        return f"{self.method} {self.uri} {SIP_VERSION}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SipRequest({self.method} {self.uri})"

    def create_response(
        self, status: int, reason: str | None = None, to_tag: str | None = None
    ) -> "SipResponse":
        """Build a response per RFC 3261 8.2.6: copy Via/From/To/Call-ID/CSeq."""
        response = SipResponse(status, reason)
        for name in ("Via", "From", "Call-Id", "Cseq"):
            for value in self.headers.get_all(name):
                response.headers.add(name, value)
        cseq = self.cseq
        if (
            cseq is not None
            and cseq.method in DIALOG_FORMING_METHODS
            and 101 <= status < 300
        ):
            # Dialog-forming responses echo the recorded route set (12.1.1).
            for value in self.headers.get_all("Record-Route"):
                response.headers.add("Record-Route", value)
        to_value = self.headers.get("To") or ""
        if to_tag and ";tag=" not in to_value:
            to_value = str(NameAddr.parse(to_value).with_tag(to_tag))
        response.headers.add("To", to_value)
        return response


class SipResponse(SipMessage):
    """A SIP response (start line ``SIP/2.0 status reason``)."""

    def __init__(
        self,
        status: int,
        reason: str | None = None,
        headers: Headers | None = None,
        body: bytes = b"",
    ) -> None:
        super().__init__(headers, body)
        self.status = status
        self.reason = reason if reason is not None else REASON_PHRASES.get(status, "Unknown")

    def _start_line(self) -> str:
        return f"{SIP_VERSION} {self.status} {self.reason}"

    @property
    def is_provisional(self) -> bool:
        return 100 <= self.status < 200

    @property
    def is_final(self) -> bool:
        return self.status >= 200

    @property
    def is_success(self) -> bool:
        return 200 <= self.status < 300

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SipResponse({self.status} {self.reason})"


def parse_message(data: bytes) -> SipRequest | SipResponse:
    """Parse wire bytes into a request or response.

    Raises :class:`SipParseError` on malformed input.
    """
    try:
        head, _, body = data.partition(b"\r\n\r\n")
        text = head.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SipParseError("SIP message head is not valid UTF-8") from exc
    lines = text.split(CRLF)
    if not lines or not lines[0].strip():
        raise SipParseError("empty SIP message")
    start_line = lines[0]
    headers = Headers()
    previous_name: str | None = None
    for line in lines[1:]:
        if not line.strip():
            continue
        if line[0] in " \t" and previous_name is not None:
            # Header line folding (obsolete but legal): append to previous.
            headers.extend_last(previous_name, line)
            continue
        if ":" not in line:
            raise SipParseError(f"malformed header line: {line!r}")
        name, value = line.split(":", 1)
        if not name.strip() or name != name.strip():
            raise SipParseError(f"malformed header name: {name!r}")
        headers.add(name.strip(), value)
        previous_name = name.strip()

    if start_line.startswith(SIP_VERSION):
        parts = start_line.split(" ", 2)
        if len(parts) < 3:
            raise SipParseError(f"malformed status line: {start_line!r}")
        try:
            status = int(parts[1])
        except ValueError as exc:
            raise SipParseError(f"malformed status code: {start_line!r}") from exc
        if not 100 <= status <= 699:
            raise SipParseError(f"status code out of range: {status}")
        return SipResponse(status, parts[2], headers=headers, body=body)

    parts = start_line.split(" ")
    if len(parts) != 3 or parts[2] != SIP_VERSION:
        raise SipParseError(f"malformed request line: {start_line!r}")
    method, uri_text, _ = parts
    if not method.isupper() or not method.isalpha():
        raise SipParseError(f"malformed method: {method!r}")
    uri = SipUri.parse(uri_text)
    return SipRequest(method, uri, headers=headers, body=body)
