"""SIP URIs (RFC 3261 section 19.1, practical subset).

Supports ``sip:user@host:port;param=value;lr`` forms plus name-addr
(``"Display" <sip:...>;tag=x``) used by From/To/Contact/Route headers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import SipParseError


@dataclass(frozen=True)
class SipUri:
    """A parsed SIP URI."""

    user: str | None
    host: str
    port: int | None = None
    params: tuple[tuple[str, str | None], ...] = ()
    scheme: str = "sip"

    @classmethod
    def parse(cls, text: str) -> "SipUri":
        text = text.strip()
        if ":" not in text:
            raise SipParseError(f"not a SIP URI (no scheme): {text!r}")
        scheme, rest = text.split(":", 1)
        scheme = scheme.lower()
        if scheme not in ("sip", "sips"):
            raise SipParseError(f"unsupported URI scheme {scheme!r}")
        params: list[tuple[str, str | None]] = []
        if ";" in rest:
            rest, param_text = rest.split(";", 1)
            for chunk in param_text.split(";"):
                if not chunk:
                    continue
                if "=" in chunk:
                    key, value = chunk.split("=", 1)
                    params.append((key.lower(), value))
                else:
                    params.append((chunk.lower(), None))
        user: str | None = None
        if "@" in rest:
            user, hostport = rest.rsplit("@", 1)
            if not user:
                raise SipParseError(f"empty user part in URI: {text!r}")
        else:
            hostport = rest
        port: int | None = None
        if ":" in hostport:
            host, port_text = hostport.rsplit(":", 1)
            try:
                port = int(port_text)
            except ValueError as exc:
                raise SipParseError(f"invalid port in URI: {text!r}") from exc
            if not 0 < port < 65536:
                raise SipParseError(f"port out of range in URI: {text!r}")
        else:
            host = hostport
        if not host:
            raise SipParseError(f"empty host in URI: {text!r}")
        return cls(user=user, host=host.lower(), port=port, params=tuple(params), scheme=scheme)

    def __str__(self) -> str:
        out = f"{self.scheme}:"
        if self.user:
            out += f"{self.user}@"
        out += self.host
        if self.port is not None:
            out += f":{self.port}"
        for key, value in self.params:
            out += f";{key}" if value is None else f";{key}={value}"
        return out

    # -- convenience -----------------------------------------------------------
    @property
    def address_of_record(self) -> str:
        """The bare ``sip:user@host`` form used as a registration key."""
        user_part = f"{self.user}@" if self.user else ""
        return f"{self.scheme}:{user_part}{self.host}"

    def param(self, name: str) -> str | None:
        for key, value in self.params:
            if key == name.lower():
                return value if value is not None else ""
        return None

    def has_param(self, name: str) -> bool:
        return any(key == name.lower() for key, value in self.params)

    def with_param(self, name: str, value: str | None = None) -> "SipUri":
        remaining = tuple((k, v) for k, v in self.params if k != name.lower())
        return replace(self, params=remaining + ((name.lower(), value),))

    def without_params(self) -> "SipUri":
        return replace(self, params=())

    def effective_port(self, default: int = 5060) -> int:
        return self.port if self.port is not None else default


@dataclass
class NameAddr:
    """name-addr form: optional display name, URI, and header parameters.

    Used for From/To/Contact/Route/Record-Route header values like
    ``"Alice" <sip:alice@voicehoc.ch>;tag=8f2a``.
    """

    uri: SipUri
    display_name: str | None = None
    params: dict[str, str | None] = field(default_factory=dict)

    @classmethod
    def parse(cls, text: str) -> "NameAddr":
        text = text.strip()
        display_name: str | None = None
        params: dict[str, str | None] = {}
        if "<" in text:
            before, _, rest = text.partition("<")
            uri_text, _, after = rest.partition(">")
            display_name = before.strip().strip('"') or None
            for chunk in after.split(";"):
                chunk = chunk.strip()
                if not chunk:
                    continue
                if "=" in chunk:
                    key, value = chunk.split("=", 1)
                    params[key.lower()] = value
                else:
                    params[chunk.lower()] = None
            uri = SipUri.parse(uri_text)
        else:
            # addr-spec form: any ;params belong to the header, not the URI.
            if ";" in text:
                uri_text, _, param_text = text.partition(";")
                for chunk in param_text.split(";"):
                    if not chunk:
                        continue
                    if "=" in chunk:
                        key, value = chunk.split("=", 1)
                        params[key.lower()] = value
                    else:
                        params[chunk.lower()] = None
            else:
                uri_text = text
            uri = SipUri.parse(uri_text)
        return cls(uri=uri, display_name=display_name, params=params)

    def __str__(self) -> str:
        if self.display_name:
            out = f'"{self.display_name}" <{self.uri}>'
        else:
            out = f"<{self.uri}>"
        for key, value in self.params.items():
            out += f";{key}" if value is None else f";{key}={value}"
        return out

    @property
    def tag(self) -> str | None:
        return self.params.get("tag")

    def with_tag(self, tag: str) -> "NameAddr":
        new_params = dict(self.params)
        new_params["tag"] = tag
        return NameAddr(uri=self.uri, display_name=self.display_name, params=new_params)
