"""SIP dialogs (RFC 3261 section 12).

A dialog tracks the peer-to-peer SIP relationship created by an INVITE:
tags, CSeq numbers, the remote target (Contact) and the route set learned
from Record-Route headers. In-dialog requests (ACK for 2xx, BYE) are built
from this state and routed through the recorded proxy chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SipDialogError
from repro.globalstate import registry
from repro.sip.message import Headers, SipRequest, SipResponse
from repro.sip.uri import NameAddr, SipUri

# Tags and call-ids only need process-lifetime uniqueness, so the counters
# are process-global — registered so repro.globalstate.registry.reset_all()
# (parity harnesses) and future region shards have one choke point.
_tag_counter = registry.counter("sip.dialog.tag", start=1)
_call_id_counter = registry.counter("sip.dialog.call_id", start=1)


def new_tag() -> str:
    return f"tag{_tag_counter.next():06x}"


def new_call_id(host: str) -> str:
    return f"cid{_call_id_counter.next():08x}@{host}"


DialogKey = tuple[str, str, str]


@dataclass
class Dialog:
    """Dialog state from the viewpoint of one party."""

    call_id: str
    local_tag: str
    remote_tag: str
    local_party: NameAddr
    remote_party: NameAddr
    remote_target: SipUri
    route_set: list[SipUri] = field(default_factory=list)
    local_seq: int = 0
    remote_seq: int = 0

    @property
    def key(self) -> DialogKey:
        return (self.call_id, self.local_tag, self.remote_tag)

    @classmethod
    def from_response(cls, request: SipRequest, response: SipResponse) -> "Dialog":
        """Create the caller-side (UAC) dialog from a dialog-forming 2xx."""
        to = response.to
        from_ = response.from_
        if to is None or from_ is None or to.tag is None or from_.tag is None:
            raise SipDialogError("dialog-forming response is missing tags")
        contact = response.contact
        remote_target = contact.uri if contact is not None else request.uri
        # UAC route set: Record-Route values in reverse order (RFC 12.1.2).
        routes = [entry.uri for entry in reversed(response.record_routes())]
        cseq = request.cseq
        return cls(
            call_id=response.call_id or "",
            local_tag=from_.tag,
            remote_tag=to.tag,
            local_party=from_,
            remote_party=to,
            remote_target=remote_target,
            route_set=routes,
            local_seq=cseq.number if cseq else 1,
        )

    @classmethod
    def from_request(
        cls, request: SipRequest, local_tag: str, local_contact: SipUri
    ) -> "Dialog":
        """Create the callee-side (UAS) dialog when answering an INVITE."""
        from_ = request.from_
        to = request.to
        if from_ is None or to is None or from_.tag is None:
            raise SipDialogError("dialog-forming request is missing a From tag")
        contact = request.contact
        remote_target = contact.uri if contact is not None else from_.uri
        # UAS route set: Record-Route values in order (RFC 12.1.1).
        routes = [entry.uri for entry in request.record_routes()]
        cseq = request.cseq
        return cls(
            call_id=request.call_id or "",
            local_tag=local_tag,
            remote_tag=from_.tag,
            local_party=to.with_tag(local_tag),
            remote_party=from_,
            remote_target=remote_target,
            route_set=routes,
            remote_seq=cseq.number if cseq else 1,
        )

    # -- building in-dialog requests ------------------------------------------
    def create_request(self, method: str, cseq_number: int | None = None) -> SipRequest:
        headers = Headers()
        headers.add("From", str(self.local_party.with_tag(self.local_tag)))
        headers.add("To", str(self.remote_party))
        headers.add("Call-ID", self.call_id)
        if cseq_number is None:
            self.local_seq += 1
            cseq_number = self.local_seq
        headers.add("CSeq", f"{cseq_number} {method.upper()}")
        headers.add("Max-Forwards", "70")
        request = SipRequest(method.upper(), self.remote_target, headers=headers)
        for route in self.route_set:
            request.headers.add("Route", f"<{route}>")
        return request

    def next_hop(self, default_port: int = 5060) -> tuple[str, int]:
        """Where to physically send in-dialog requests (first route or target)."""
        if self.route_set:
            first = self.route_set[0]
            return (first.host, first.effective_port(default_port))
        return (self.remote_target.host, self.remote_target.effective_port(default_port))

    def matches_request(self, request: SipRequest) -> bool:
        """True if an incoming in-dialog request belongs to this dialog."""
        if request.call_id != self.call_id:
            return False
        from_ = request.from_
        to = request.to
        remote = from_.tag if from_ is not None else None
        local = to.tag if to is not None else None
        return remote == self.remote_tag and local == self.local_tag
