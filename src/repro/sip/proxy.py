"""Generic stateful SIP proxy core (RFC 3261 section 16, loose routing).

Both the SIPHoc proxy (MANET side) and the Internet providers' proxies are
built on this engine. The engine owns the mechanics — Via push/pop,
Record-Route, Max-Forwards, transaction pairing, in-dialog Route-header
traversal, CANCEL propagation — while a pluggable *routing function*
decides where dialog-initiating requests go. The routing function may
answer asynchronously (SIPHoc needs that for MANET SLP lookups): it
receives a :class:`RoutingContext` and calls ``forward`` or ``respond``
whenever it is ready.

A proxy may have several *legs* (transports on different interfaces):
SIPHoc's proxy gains a WAN leg on the tunnel interface once the Connection
Provider is attached to a gateway. Requests crossing legs get the standard
double Record-Route so in-dialog requests traverse the correct interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.netsim.node import Node
from repro.netsim.packet import is_internet_address
from repro.sip.message import SipRequest, SipResponse
from repro.sip.transaction import ServerTransaction, TransactionLayer
from repro.sip.transport import Address, SipTransport
from repro.sip.uri import NameAddr, SipUri


class ProxyLeg:
    """One transport + transaction layer of a (possibly multi-homed) proxy."""

    def __init__(self, core: "ProxyCore", name: str, transport: SipTransport) -> None:
        self.core = core
        self.name = name
        self.transport = transport
        self.transactions = TransactionLayer(transport, core.sim)
        self.transactions.on_request = self._on_request

    @property
    def address(self) -> str:
        return self.transport.address

    @property
    def port(self) -> int:
        return self.transport.port

    @property
    def route_uri(self) -> SipUri:
        return SipUri(user=None, host=self.address, port=self.port).with_param("lr")

    def owns(self, uri: SipUri) -> bool:
        return uri.host == self.address and uri.effective_port() == self.port

    def close(self) -> None:
        self.transport.close()

    def _on_request(
        self, request: SipRequest, txn: ServerTransaction | None, source: Address
    ) -> None:
        self.core._on_request(request, txn, source, self)


class RoutingContext:
    """Handed to the routing function for each request needing a decision."""

    def __init__(
        self,
        proxy: "ProxyCore",
        request: SipRequest,
        txn: ServerTransaction | None,
        source: Address,
        leg: ProxyLeg,
    ) -> None:
        self.proxy = proxy
        self.request = request
        self.txn = txn
        self.source = source
        self.leg = leg
        self.decided = False

    def forward(
        self,
        destination: Address,
        uri: SipUri | None = None,
        record_route: bool | None = None,
        out_leg: ProxyLeg | None = None,
    ) -> None:
        """Forward the request to ``destination`` (optionally rewriting the URI)."""
        if self.decided:
            return
        self.decided = True
        leg = out_leg or self.proxy.select_leg(destination[0])
        self.proxy._forward_request(self, destination, uri, record_route, leg)

    def respond(
        self,
        status: int,
        reason: str | None = None,
        headers: list[tuple[str, str]] | None = None,
    ) -> None:
        """Answer the request locally with a final response."""
        if self.decided:
            return
        self.decided = True
        if self.txn is not None:
            response = self.request.create_response(status, reason)
            for name, value in headers or ():
                response.headers.set(name, value)
            self.txn.send_response(response)

    def drop(self) -> None:
        self.decided = True


#: The routing function: inspect ``ctx.request`` and eventually call
#: ``ctx.forward(...)`` or ``ctx.respond(...)`` (synchronously or later).
RouteFn = Callable[[RoutingContext], None]


@dataclass
class AdmissionControl:
    """Overload policy for dialog-initiating requests (DESIGN.md §5f).

    When either watermark is crossed, new INVITE/REGISTER requests are
    rejected with ``503 Service Unavailable`` + ``Retry-After`` instead of
    being queued into congestion. In-dialog requests (re-INVITE, BYE, ACK,
    CANCEL) always pass: admission control must never break an established
    call. Both watermarks default to off.
    """

    #: Reject while this many proxied INVITE/REGISTERs await a final
    #: response (``None`` = don't look at transaction pressure).
    max_inflight: int | None = None
    #: Reject while the node's bounded TX queue is at or beyond this
    #: occupancy fraction (``None`` = don't look at queue depth; ignored
    #: when the node has no TX queue configured).
    queue_watermark: float | None = None
    #: Delta-seconds advertised to rejected clients.
    retry_after: int = 5


class _ProxiedInvite:
    __slots__ = ("client_request", "destination", "leg")

    def __init__(
        self, client_request: SipRequest, destination: Address, leg: ProxyLeg
    ) -> None:
        self.client_request = client_request
        self.destination = destination
        self.leg = leg


class ProxyCore:
    """A stateful forwarding proxy with one or more legs."""

    def __init__(self, node: Node, port: int = 5060, record_route: bool = True) -> None:
        self.node = node
        self.sim = node.sim
        self.record_route = record_route
        self.primary = ProxyLeg(self, "primary", SipTransport(node, port))
        self.legs: dict[str, ProxyLeg] = {"primary": self.primary}
        self.route_fn: RouteFn | None = None
        self.on_register: Callable[[RoutingContext], None] | None = None
        #: Optional hook invoked when messages cross legs, e.g. for SDP/media
        #: rewriting: ``media_filter(kind, message, in_leg, out_leg)`` with
        #: kind in {"request", "response"}; may mutate the message in place.
        self.media_filter: Callable[[str, object, ProxyLeg, ProxyLeg], None] | None = None
        self._proxied_invites: dict[str, _ProxiedInvite] = {}
        self.requests_processed = 0
        #: Overload policy; None (the default) admits everything.
        self.admission: AdmissionControl | None = None
        #: Proxied INVITE/REGISTER transactions still awaiting a final
        #: response — the transaction-pressure gauge for admission control.
        #: (Raw TransactionLayer counts would do: COMPLETED/ACCEPTED
        #: transactions linger for 32 s absorbing retransmissions, so a burst
        #: of *rejections* would keep the proxy wedged at its own watermark.)
        self.inflight_forwards = 0
        #: Highest inflight_forwards ever observed (metrics gauge).
        self.inflight_peak = 0
        self.rejected_overload = 0

    # -- compatibility accessors for the single-leg common case ------------------
    @property
    def transport(self) -> SipTransport:
        return self.primary.transport

    @property
    def transactions(self) -> TransactionLayer:
        return self.primary.transactions

    @property
    def address(self) -> str:
        return self.primary.address

    @property
    def port(self) -> int:
        return self.primary.port

    @property
    def route_uri(self) -> SipUri:
        return self.primary.route_uri

    # -- leg management --------------------------------------------------------------
    def add_leg(self, name: str, transport: SipTransport) -> ProxyLeg:
        leg = ProxyLeg(self, name, transport)
        self.legs[name] = leg
        return leg

    def remove_leg(self, name: str) -> None:
        leg = self.legs.pop(name, None)
        if leg is not None:
            leg.close()

    def select_leg(self, destination_ip: str) -> ProxyLeg:
        """Pick the leg whose interface should carry traffic to this address."""
        if is_internet_address(destination_ip):
            for name, leg in self.legs.items():
                if name != "primary":
                    return leg
        return self.primary

    def close(self) -> None:
        for leg in self.legs.values():
            leg.close()
        self.legs.clear()

    # -- request intake ------------------------------------------------------------------
    def _on_request(
        self,
        request: SipRequest,
        txn: ServerTransaction | None,
        source: Address,
        leg: ProxyLeg,
    ) -> None:
        self.requests_processed += 1
        self._pop_own_routes(request)

        if request.method == "ACK":
            self._forward_stateless_by_route(request)
            return
        if request.method == "CANCEL":
            self._handle_cancel(request, txn)
            return

        if not self._check_max_forwards(request, txn):
            return

        if (
            request.method in ("INVITE", "REGISTER")
            and not self._looks_in_dialog(request)
            and not request.routes()
            and self._admission_reject(request, txn)
        ):
            return

        if request.method == "INVITE" and txn is not None:
            txn.send_response(request.create_response(100))

        ctx = RoutingContext(self, request, txn, source, leg)
        if request.method == "REGISTER" and self.on_register is not None:
            self.on_register(ctx)
            return
        # In-dialog requests carry a Route header after popping our own
        # entries: pure loose routing, no routing decision needed.
        routes = request.routes()
        if routes:
            first = routes[0].uri
            ctx.forward((first.host, first.effective_port()), record_route=False)
            return
        if self._looks_in_dialog(request):
            uri = request.uri
            ctx.forward((uri.host, uri.effective_port()), record_route=False)
            return
        if self.route_fn is not None:
            self.route_fn(ctx)
            return
        ctx.respond(404)

    def _admission_reject(
        self, request: SipRequest, txn: ServerTransaction | None
    ) -> bool:
        """Shed the request with 503 + Retry-After if a watermark is crossed."""
        policy = self.admission
        if policy is None:
            return False
        cause = None
        if (
            policy.max_inflight is not None
            and self.inflight_forwards >= policy.max_inflight
        ):
            cause = "inflight"
        elif policy.queue_watermark is not None:
            queue = self.node.tx_queue
            if (
                queue is not None
                and queue.depth >= policy.queue_watermark * queue.capacity
            ):
                cause = "queue_depth"
        if cause is None:
            return False
        self.rejected_overload += 1
        self.node.stats.increment("sip.admission_rejected")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "sip.overload_reject",
                self.node.ip or self.node.wired_ip or "",
                method=request.method,
                cause=cause,
                inflight=self.inflight_forwards,
                retry_after=policy.retry_after,
            )
        if txn is not None:
            response = request.create_response(503)
            response.set_retry_after(policy.retry_after)
            txn.send_response(response)
        return True

    def _looks_in_dialog(self, request: SipRequest) -> bool:
        """Mid-dialog requests have a To tag (RFC 3261 section 12.2)."""
        to = request.to
        return to is not None and to.tag is not None and request.method != "REGISTER"

    def _pop_own_routes(self, request: SipRequest) -> None:
        """Strip our own URIs from the top of the Route set (loose routing).

        With double Record-Route both of our leg addresses may be stacked.
        """
        while True:
            routes = request.headers.get_all("Route")
            if not routes:
                return
            top = NameAddr.parse(routes[0]).uri
            if any(leg.owns(top) for leg in self.legs.values()):
                request.headers.remove_first("Route")
            else:
                return

    def _check_max_forwards(
        self, request: SipRequest, txn: ServerTransaction | None
    ) -> bool:
        raw = request.headers.get("Max-Forwards")
        if raw is None:
            request.headers.set("Max-Forwards", "70")
            return True
        try:
            value = int(raw)
        except ValueError:
            value = 70
        if value <= 0:
            if txn is not None:
                txn.send_response(request.create_response(483))
            return False
        request.headers.set("Max-Forwards", str(value - 1))
        return True

    # -- forwarding ------------------------------------------------------------------------
    def _forward_request(
        self,
        ctx: RoutingContext,
        destination: Address,
        uri: SipUri | None,
        record_route: bool | None,
        out_leg: ProxyLeg,
    ) -> None:
        request = ctx.request
        forwarded = SipRequest(
            request.method,
            uri if uri is not None else request.uri,
            headers=request.headers.copy(),
            body=request.body,
        )
        should_rr = self.record_route if record_route is None else record_route
        if should_rr and request.method in ("INVITE", "SUBSCRIBE"):
            # Topmost Record-Route is the interface facing the next hop; when
            # the request crosses legs we add both (double Record-Route).
            if out_leg is not ctx.leg:
                forwarded.headers.insert_first("Record-Route", f"<{ctx.leg.route_uri}>")
            forwarded.headers.insert_first("Record-Route", f"<{out_leg.route_uri}>")

        crossing = out_leg is not ctx.leg
        if crossing and self.media_filter is not None:
            self.media_filter("request", forwarded, ctx.leg, out_leg)

        if ctx.txn is None:
            out_leg.transactions.send_stateless(forwarded, destination)
            return

        server_txn = ctx.txn
        in_leg = ctx.leg

        # Dialog-initiating forwards count toward the admission-control
        # gauge until their first final response (or timeout).
        tracked = request.method in ("INVITE", "REGISTER")
        if tracked:
            self.inflight_forwards += 1
            if self.inflight_forwards > self.inflight_peak:
                self.inflight_peak = self.inflight_forwards

        def settle() -> None:
            nonlocal tracked
            if tracked:
                tracked = False
                self.inflight_forwards -= 1

        def on_response(response: SipResponse) -> None:
            if response.is_final:
                settle()
            if crossing and self.media_filter is not None:
                self.media_filter("response", response, in_leg, out_leg)
            self._relay_response(server_txn, response)

        def on_timeout() -> None:
            settle()
            server_txn.send_response(ctx.request.create_response(408))

        out_leg.transactions.send_request(forwarded, destination, on_response, on_timeout)
        if request.method == "INVITE":
            branch = request.top_via.branch if request.top_via else ""
            self._proxied_invites[branch or ""] = _ProxiedInvite(
                forwarded, destination, out_leg
            )
            if len(self._proxied_invites) > 256:
                self._proxied_invites.pop(next(iter(self._proxied_invites)))

    def _relay_response(self, server_txn: ServerTransaction, response: SipResponse) -> None:
        if response.status == 100:
            return  # 100 Trying is hop-by-hop; we already sent our own.
        response.headers.remove_first("Via")
        server_txn.send_response(response)

    def _forward_stateless_by_route(self, request: SipRequest) -> None:
        """Forward an ACK along its Route set (or to its request URI)."""
        routes = request.routes()
        if routes:
            first = routes[0].uri
            destination = (first.host, first.effective_port())
        else:
            destination = (request.uri.host, request.uri.effective_port())
        leg = self.select_leg(destination[0])
        leg.transactions.send_stateless(request, destination)

    def _handle_cancel(self, request: SipRequest, txn: ServerTransaction | None) -> None:
        if txn is not None:
            txn.send_response(request.create_response(200))
        branch = request.top_via.branch if request.top_via else ""
        proxied = self._proxied_invites.get(branch or "")
        if proxied is None:
            return
        downstream = proxied.client_request
        cancel = SipRequest("CANCEL", downstream.uri)
        via = downstream.headers.get("Via")
        if via:
            cancel.headers.add("Via", via)
        for name in ("From", "To", "Call-Id", "Max-Forwards"):
            value = downstream.headers.get(name)
            if value:
                cancel.headers.add(name, value)
        cseq = downstream.cseq
        if cseq:
            cancel.headers.add("CSeq", f"{cseq.number} CANCEL")
        proxied.leg.transactions.send_stateless(cancel, proxied.destination)
