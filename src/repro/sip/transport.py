"""SIP transport over simulated UDP.

Binds a UDP port on a node, parses incoming datagrams into SIP messages and
serializes outgoing ones. Responses are routed back via the topmost Via
header, as RFC 3261 section 18.2.2 prescribes for UDP.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SipParseError
from repro.globalstate import registry
from repro.netsim.node import Node
from repro.sip.message import SipMessage, SipRequest, SipResponse, Via, parse_message

Address = tuple[str, int]
ReceiverFn = Callable[[SipRequest | SipResponse, Address], None]

_branch_counter = registry.counter("sip.transport.branch", start=1)

BRANCH_MAGIC = "z9hG4bK"


def new_branch() -> str:
    """Allocate a globally unique RFC 3261 branch parameter."""
    return f"{BRANCH_MAGIC}-{_branch_counter.next():08x}"


class SipTransport:
    """A UDP SIP endpoint on a node."""

    def __init__(
        self, node: Node, port: int = 5060, address_override: str | None = None
    ) -> None:
        self.node = node
        self.port = port
        self.address_override = address_override
        self._socket = node.bind(port, self._on_datagram)
        self._receiver: ReceiverFn | None = None
        self.messages_sent = 0
        self.messages_received = 0
        self.parse_errors = 0

    @property
    def address(self) -> str:
        """The address this endpoint writes into its Via/Contact headers.

        ``address_override`` lets an endpoint bound to a tunnel or wired
        interface advertise that interface's address instead of the MANET
        address (needed for SIP legs facing the Internet).
        """
        return self.address_override or self.node.ip or self.node.wired_ip or "0.0.0.0"

    def set_receiver(self, receiver: ReceiverFn) -> None:
        self._receiver = receiver

    def close(self) -> None:
        self._socket.close()

    def _describe_message(self, message: SipMessage) -> dict[str, object]:
        cseq = message.cseq
        detail: dict[str, object] = {"call_id": message.call_id or ""}
        if cseq is not None:
            detail["cseq"] = cseq.method
        if isinstance(message, SipRequest):
            detail["method"] = message.method
        elif isinstance(message, SipResponse):
            detail["status"] = message.status
        return detail

    # -- sending -----------------------------------------------------------
    def send(self, message: SipMessage, destination: Address) -> None:
        dst_ip, dst_port = destination
        self.messages_sent += 1
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.emit(
                "sip.msg_tx",
                self.node.ip or self.node.wired_ip or "",
                src=f"{self.address}:{self.port}",
                dst=f"{dst_ip}:{dst_port}",
                **self._describe_message(message),
            )
        self.node.send_udp(dst_ip, self.port, dst_port, message.serialize())

    def send_request(self, request: SipRequest, destination: Address) -> None:
        self.send(request, destination)

    def send_response(self, response: SipResponse) -> None:
        """Send a response to the sent-by address in its topmost Via."""
        via = response.top_via
        if via is None:
            self.node.stats.increment("sip.response_without_via")
            return
        self.send(response, (via.host, via.port))

    def make_via(self, branch: str) -> Via:
        return Via(host=self.address, port=self.port, branch=branch)

    # -- receiving -----------------------------------------------------------
    def _on_datagram(self, data: bytes, src_ip: str, src_port: int) -> None:
        try:
            message = parse_message(data)
        except SipParseError:
            self.parse_errors += 1
            self.node.stats.increment("sip.parse_errors")
            return
        self.messages_received += 1
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.emit(
                "sip.msg_rx",
                self.node.ip or self.node.wired_ip or "",
                src=f"{src_ip}:{src_port}",
                dst=f"{self.address}:{self.port}",
                **self._describe_message(message),
            )
        if self._receiver is not None:
            self._receiver(message, (src_ip, src_port))
