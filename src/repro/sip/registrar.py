"""SIP registrar and location service (RFC 3261 section 10).

Used by the Internet SIP providers (siphoc.ch / netvoip.ch / polyphone-like)
and by the SIPHoc proxy for its local VoIP application's registration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sip.message import SipRequest
from repro.sip.transaction import ServerTransaction
from repro.sip.uri import NameAddr, SipUri


@dataclass
class Binding:
    """One address-of-record -> contact binding."""

    aor: str
    contact: SipUri
    expires_at: float

    def is_valid(self, now: float) -> bool:
        return now < self.expires_at


class LocationService:
    """The registrar's binding database."""

    def __init__(self) -> None:
        self._bindings: dict[str, list[Binding]] = {}

    def register(self, aor: str, contact: SipUri, expires: float, now: float) -> Binding:
        binding = Binding(aor=aor, contact=contact, expires_at=now + expires)
        bindings = self._bindings.setdefault(aor, [])
        bindings[:] = [b for b in bindings if str(b.contact) != str(contact)]
        bindings.append(binding)
        return binding

    def remove(self, aor: str, contact: SipUri | None = None) -> None:
        if contact is None:
            self._bindings.pop(aor, None)
            return
        bindings = self._bindings.get(aor, [])
        bindings[:] = [b for b in bindings if str(b.contact) != str(contact)]

    def lookup(self, aor: str, now: float) -> list[SipUri]:
        return [b.contact for b in self._bindings.get(aor, []) if b.is_valid(now)]

    def bindings(self, now: float) -> dict[str, list[Binding]]:
        return {
            aor: [b for b in bindings if b.is_valid(now)]
            for aor, bindings in self._bindings.items()
            if any(b.is_valid(now) for b in bindings)
        }

    def __len__(self) -> int:
        return len(self._bindings)


class Registrar:
    """Processes REGISTER requests against a :class:`LocationService`."""

    DEFAULT_EXPIRES = 3600
    MIN_EXPIRES = 1

    def __init__(self, location: LocationService) -> None:
        self.location = location

    def process(
        self, request: SipRequest, txn: ServerTransaction | None, now: float
    ) -> bool:
        """Handle a REGISTER request; returns True if a response was sent."""
        to = request.to
        if to is None:
            if txn is not None:
                txn.send_response(request.create_response(400))
            return True
        aor = to.uri.address_of_record
        contact_value = request.headers.get("Contact")
        expires_value = request.headers.get("Expires")
        expires = self.DEFAULT_EXPIRES
        if expires_value is not None:
            try:
                expires = int(expires_value)
            except ValueError:
                if txn is not None:
                    txn.send_response(request.create_response(400))
                return True

        if contact_value is not None:
            if contact_value.strip() == "*":
                if expires == 0:
                    self.location.remove(aor)
            else:
                contact = NameAddr.parse(contact_value).uri
                if expires == 0:
                    self.location.remove(aor, contact)
                else:
                    self.location.register(aor, contact, max(expires, self.MIN_EXPIRES), now)

        response = request.create_response(200)
        for contact_uri in self.location.lookup(aor, now):
            response.headers.add("Contact", f"<{contact_uri}>;expires={expires}")
        if txn is not None:
            txn.send_response(response)
        return True
