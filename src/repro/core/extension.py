"""Piggyback extension payloads.

SIPHoc attaches SLP messages to routing packets as opaque extensions. The
extension body is a regular SLP wire message (``repro.slp.messages``), so a
packet dissector sees e.g. "AODV RREP + SLP SrvReg(service:siphoc-sip://...)"
— the Figure 5 capture.
"""

from __future__ import annotations

from repro.errors import CodecError
from repro.routing.messages import Extension
from repro.slp.messages import (
    SlpMessage,
    SrvDeReg,
    SrvReg,
    SrvRply,
    SrvRqst,
    decode_slp,
    encode_slp,
)

#: Extension type codes carried in routing packets.
EXT_SLP_ADVERT = 0x11  # SrvReg / SrvDeReg: service announcement
EXT_SLP_QUERY = 0x12  # SrvRqst: a lookup riding a route discovery
EXT_SLP_REPLY = 0x13  # SrvRply: the answer riding the route reply

SLP_EXTENSION_TYPES = (EXT_SLP_ADVERT, EXT_SLP_QUERY, EXT_SLP_REPLY)


def advert_extension(message: SrvReg | SrvDeReg) -> Extension:
    return Extension(EXT_SLP_ADVERT, encode_slp(message))


def query_extension(message: SrvRqst) -> Extension:
    return Extension(EXT_SLP_QUERY, encode_slp(message))


def reply_extension(message: SrvRply) -> Extension:
    return Extension(EXT_SLP_REPLY, encode_slp(message))


def decode_extension(extension: Extension) -> SlpMessage | None:
    """Decode an SLP piggyback extension; None for foreign extension types."""
    if extension.ext_type not in SLP_EXTENSION_TYPES:
        return None
    try:
        return decode_slp(extension.body)
    except CodecError:
        return None


def is_slp_extension(extension: Extension) -> bool:
    return extension.ext_type in SLP_EXTENSION_TYPES
