"""The VoIP application: an out-of-the-box SIP softphone.

Stands in for Kphone/Twinkle/Linphone on the laptops and Minisip on the
iPAQs. Crucially it contains *zero* MANET-specific code: it is configured
exactly like Figure 2 — a username, a provider domain, and an outbound
proxy pointing at localhost — and speaks plain SIP. Everything ad hoc
happens in the SIPHoc proxy underneath.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass
from typing import Callable

from repro.core.config import SipAccount
from repro.core.connection import backoff_with_jitter, node_backoff_rng
from repro.netsim.node import Node
from repro.errors import CodecError
from repro.rtp.codecs import (
    AUXILIARY_PAYLOAD_TYPES,
    COMFORT_NOISE_PAYLOAD_TYPE,
    Codec,
    G711,
    H263,
    RED_PAYLOAD_TYPE,
    TELEPHONE_EVENT_PAYLOAD_TYPE,
    codec_for_payload_type,
)
from repro.rtp.jitter import JitterPolicy
from repro.rtp.quality import CallQuality
from repro.rtp.session import RtpSession
from repro.sip.pidf import AVAILABLE, OFFLINE, ON_THE_PHONE, PresenceStatus
from repro.sip.sdp import SessionDescription
from repro.sip.ua import Call, CallState, IncomingCall, OutgoingCall, Subscription, UserAgent
from repro.sip.uri import SipUri


class AnswerMode(enum.Enum):
    AUTO = "auto"  # ring, then answer after ``answer_delay``
    MANUAL = "manual"  # ring, then wait for the application callback
    REJECT = "reject"  # 486 Busy Here


@dataclass
class CallRecord:
    """One entry of the softphone's call history."""

    direction: str  # "out" | "in"
    peer: str
    placed_at: float
    ringing_at: float | None = None
    established_at: float | None = None
    ended_at: float | None = None
    final_state: str = ""
    failure_status: int | None = None
    #: Retry-After seconds from the failure response, if any (§5f).
    retry_after: int | None = None
    #: 1 for the first dial, 2+ for automatic 503 retries of the same target.
    attempt: int = 1
    quality: CallQuality | None = None
    video: "VideoStats | None" = None

    @property
    def established(self) -> bool:
        return self.established_at is not None

    @property
    def setup_delay(self) -> float | None:
        if self.established_at is None:
            return None
        return self.established_at - self.placed_at

    @property
    def post_dial_delay(self) -> float | None:
        """Time from dialing to ringback — the paper-relevant setup metric
        (excludes how long the callee takes to pick up)."""
        if self.ringing_at is None:
            return None
        return self.ringing_at - self.placed_at

    @property
    def talk_time(self) -> float | None:
        if self.established_at is None or self.ended_at is None:
            return None
        return self.ended_at - self.established_at


@dataclass
class VideoStats:
    """Receiver-side statistics of a video stream."""

    frames_expected: int
    frames_received: int
    mean_delay: float

    @property
    def loss_ratio(self) -> float:
        if self.frames_expected == 0:
            return 0.0
        return max(0.0, 1.0 - self.frames_received / self.frames_expected)

    @property
    def watchable(self) -> bool:
        """Under ~5 % frame loss is generally considered watchable."""
        return self.loss_ratio < 0.05


@dataclass
class TextMessage:
    """One instant message in the softphone's inbox/outbox."""

    direction: str  # "out" | "in"
    peer: str
    text: str
    at: float
    delivered: bool | None = None
    status: int | None = None


class SoftPhone:
    """A SIP softphone with optional simulated voice media."""

    #: Cap on the exponential part of the 503 retry backoff (seconds).
    RETRY_BACKOFF_CAP = 32.0

    def __init__(
        self,
        node: Node,
        account: SipAccount,
        port: int = 5070,
        codec: Codec = G711,
        answer_mode: AnswerMode = AnswerMode.AUTO,
        answer_delay: float = 0.5,
        media: bool = True,
        playout_delay: float = 0.06,
        jitter_policy: JitterPolicy | None = None,
        redundancy: int = 0,
        vad: bool = False,
        dtmf: bool = False,
        video: bool = False,
        video_codec: Codec = H263,
        retry_on_503: bool = False,
        max_call_attempts: int = 3,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.account = account
        self.codec = codec
        self.answer_mode = answer_mode
        self.answer_delay = answer_delay
        self.media = media
        self.playout_delay = playout_delay
        #: Media-plane knobs (§5j): playout policy, RFC 2198 depth, silence
        #: suppression, DTMF capability. Redundancy is used on a call only
        #: when both ends negotiated the red payload type in SDP.
        self.jitter_policy = jitter_policy
        self.redundancy = redundancy
        self.vad = vad
        self.dtmf = dtmf
        self.video = video
        self.video_codec = video_codec
        #: Honor 503 Retry-After from an overloaded proxy by redialing (and
        #: re-registering) after Retry-After + jittered exponential backoff
        #: (§5f). Off by default: a stock softphone just reports the failure.
        self.retry_on_503 = retry_on_503
        self.max_call_attempts = max_call_attempts
        self._backoff_rng = node_backoff_rng(node, salt=1)
        self._register_failures = 0
        self._video_sessions: dict[str, RtpSession] = {}
        if account.uses_local_proxy:
            outbound = ("127.0.0.1", account.outbound_proxy_port)
        else:
            outbound = (account.outbound_proxy, account.outbound_proxy_port)
        self.ua = UserAgent(
            node,
            aor=account.aor,
            port=port,
            display_name=account.display_name,
            outbound_proxy=outbound,
            credentials=account.credentials,
        )
        self.ua.on_invite = self._on_invite
        self.ua.on_message = self._on_text
        self.history: list[CallRecord] = []
        self.inbox: list[TextMessage] = []
        self.outbox: list[TextMessage] = []
        self._records: dict[str, CallRecord] = {}
        self._media_sessions: dict[str, RtpSession] = {}
        self._refresh_task = None
        self.buddies: dict[str, PresenceStatus] = {}
        self._buddy_subscriptions: dict[str, Subscription] = {}
        self.on_incoming: Callable[[IncomingCall], None] | None = None
        self.on_text: Callable[["TextMessage"], None] | None = None
        self.on_buddy_change: Callable[[str, PresenceStatus], None] | None = None

    @property
    def media_sessions(self) -> list[RtpSession]:
        """Open RTP sessions, one per active call leg (metrics gauge)."""
        return list(self._media_sessions.values())

    def media_session(self, call_id: str) -> RtpSession | None:
        """The RTP session of one call, if media is flowing (§5k policy)."""
        return self._media_sessions.get(call_id)

    def migrate_call(
        self, call: Call, on_result: Callable[[bool], None] | None = None
    ) -> None:
        """Re-anchor an established call to this node's wired address (§5k).

        Rewrites the UA's transport address (so the migration re-INVITE's
        Via and Contact name the surviving interface), then delegates to
        :meth:`repro.sip.ua.Call.migrate`. The RTP session keeps its
        socket, SSRC and sequence space; only the remote endpoint moves,
        via the usual ``on_media`` re-anchor hook.
        """
        new_address = self.node.wired_ip
        if new_address is None or call.local_sdp is None:
            if on_result is not None:
                on_result(False)
            return
        self.ua.transport.address_override = new_address
        self.ua.alt_contact_uri = SipUri(
            user=self.ua.aor.user, host=new_address, port=self.ua.transport.port
        )
        call.migrate(call.local_sdp.with_address(new_address), on_result)

    # -- lifecycle ------------------------------------------------------------------
    def start(
        self,
        register: bool = True,
        expires: int = 3600,
        on_registered: Callable[[bool], None] | None = None,
    ) -> "SoftPhone":
        """Boot the phone; by default it immediately registers (step 1) and
        keeps the binding alive by re-registering at half the expiry."""
        if register:
            if self.retry_on_503:
                self._register_with_backoff(expires, on_registered)
            else:
                self.ua.register(
                    expires=expires,
                    on_result=(lambda ok, resp: on_registered(ok)) if on_registered else None,
                )
            if self._refresh_task is None and expires > 1:
                self._refresh_task = self.sim.schedule_periodic(
                    expires / 2, lambda: self.ua.register(expires=expires), jitter=0.05
                )
        return self

    def _register_with_backoff(
        self,
        expires: int,
        on_registered: Callable[[bool], None] | None = None,
    ) -> None:
        """REGISTER, honoring 503 Retry-After with jittered backoff (§5f)."""

        def on_result(ok: bool, response) -> None:
            if ok:
                self._register_failures = 0
            elif response is not None and response.status == 503:
                self._register_failures += 1
                delay = (response.retry_after or 1) + backoff_with_jitter(
                    1.0,
                    self._register_failures,
                    self.RETRY_BACKOFF_CAP,
                    self._backoff_rng,
                )
                self.node.stats.increment("softphone.register_retries")
                self.sim.schedule(delay, self._register_with_backoff, expires)
            if on_registered is not None:
                on_registered(ok)

        self.ua.register(expires=expires, on_result=on_result)

    def stop(self) -> None:
        self.ua.set_presence(OFFLINE)  # last NOTIFY to watchers before we go
        for subscription in self._buddy_subscriptions.values():
            subscription.terminate()
        self._buddy_subscriptions.clear()
        if self._refresh_task is not None:
            self._refresh_task.stop()
            self._refresh_task = None
        for session in self._media_sessions.values():
            session.close()
        self._media_sessions.clear()
        for session in self._video_sessions.values():
            session.close()
        self._video_sessions.clear()
        self.ua.close()

    @property
    def registered(self) -> bool:
        return self.ua.registered

    @property
    def aor(self) -> str:
        return self.account.aor.address_of_record

    # -- calling -----------------------------------------------------------------------
    def place_call(
        self,
        target: str,
        duration: float | None = None,
        on_state: Callable[[Call], None] | None = None,
        _attempt: int = 1,
    ) -> OutgoingCall:
        """Dial ``target`` (an AOR). ``duration`` auto-hangs-up after connect.

        With ``retry_on_503`` the phone automatically redials after a 503,
        waiting out the proxy's Retry-After plus jittered backoff; each
        attempt gets its own :class:`CallRecord` (``attempt`` numbers them).
        """
        record = CallRecord(
            direction="out", peer=target, placed_at=self.sim.now, attempt=_attempt
        )
        self.history.append(record)

        def state_hook(call: Call) -> None:
            self._track_call(call, record, duration)
            if call.state is CallState.FAILED:
                self._maybe_retry_503(call, target, duration, on_state, _attempt)
            if on_state is not None:
                on_state(call)

        sdp = SessionDescription.offer(
            self.ua.transport.address,
            _next_media_port(self.node),
            payload_types=[self.codec.payload_type, *self._extension_payloads()],
            video_port=_next_media_port(self.node) if self.video else None,
            video_payloads=[self.video_codec.payload_type] if self.video else None,
        )
        call = self.ua.call(target, sdp=sdp, on_state=state_hook)
        self._records[call.call_id] = record
        return call

    def _maybe_retry_503(
        self,
        call: Call,
        target: str,
        duration: float | None,
        on_state: Callable[[Call], None] | None,
        attempt: int,
    ) -> None:
        if (
            not self.retry_on_503
            or call.failure_status != 503
            or attempt >= self.max_call_attempts
        ):
            return
        delay = (call.retry_after or 1) + backoff_with_jitter(
            1.0, attempt, self.RETRY_BACKOFF_CAP, self._backoff_rng
        )
        self.node.stats.increment("softphone.call_retries")
        self.sim.schedule(delay, self.place_call, target, duration, on_state, attempt + 1)

    # -- presence ------------------------------------------------------------------------
    @property
    def presence(self) -> PresenceStatus:
        return self.ua.presence

    def watch(
        self,
        target: str,
        on_change: Callable[[str, PresenceStatus], None] | None = None,
        expires: int = 300,
    ) -> Subscription:
        """Subscribe to a buddy's presence; state lands in ``self.buddies``."""

        def on_notify(subscription: Subscription) -> None:
            if subscription.terminated and target not in self._buddy_subscriptions:
                return  # we unwatched; ignore the final NOTIFY
            if subscription.status is not None:
                self.buddies[target] = subscription.status
                if on_change is not None:
                    on_change(target, subscription.status)
                if self.on_buddy_change is not None:
                    self.on_buddy_change(target, subscription.status)

        subscription = self.ua.subscribe(target, on_notify=on_notify, expires=expires)
        self._buddy_subscriptions[target] = subscription
        return subscription

    def unwatch(self, target: str) -> None:
        subscription = self._buddy_subscriptions.pop(target, None)
        if subscription is not None:
            subscription.terminate()
        self.buddies.pop(target, None)

    def _update_own_presence(self) -> None:
        busy = bool(self.ua.active_calls)
        desired = ON_THE_PHONE if busy else AVAILABLE
        if self.ua.presence != desired:
            self.ua.set_presence(desired)

    # -- instant messaging -------------------------------------------------------------
    def send_text(
        self,
        target: str,
        text: str,
        on_result: Callable[[bool, int | None], None] | None = None,
    ) -> "TextMessage":
        """Send an instant message (the paper's 'text communicator' use)."""
        message = TextMessage(
            direction="out", peer=target, text=text, at=self.sim.now
        )
        self.outbox.append(message)

        def result(ok: bool, status: int | None) -> None:
            message.delivered = ok
            message.status = status
            if on_result is not None:
                on_result(ok, status)

        self.ua.send_message(target, text, on_result=result)
        return message

    def _on_text(self, text: str, sender) -> None:
        message = TextMessage(
            direction="in",
            peer=sender.address_of_record,
            text=text,
            at=self.sim.now,
            delivered=True,
        )
        self.inbox.append(message)
        if self.on_text is not None:
            self.on_text(message)

    # -- incoming ----------------------------------------------------------------------
    def _on_invite(self, call: IncomingCall) -> None:
        peer = str(call.caller) if call.caller is not None else "unknown"
        record = CallRecord(direction="in", peer=peer, placed_at=self.sim.now)
        self.history.append(record)
        self._records[call.call_id] = record
        call.on_state = functools.partial(self._track_call, record=record, duration=None)
        if self.answer_mode is AnswerMode.REJECT:
            call.reject(486)
            return
        call.ring()
        if self.answer_mode is AnswerMode.AUTO:
            self.sim.schedule(self.answer_delay, self._auto_answer, call)
        elif self.on_incoming is not None:
            self.on_incoming(call)

    def _auto_answer(self, call: IncomingCall) -> None:
        if call.state is CallState.RINGING:
            sdp = None
            if call.remote_sdp is not None:
                wants_video = self.video and call.remote_sdp.video is not None
                sdp = call.remote_sdp.answer(
                    self.ua.transport.address,
                    _next_media_port(self.node),
                    video_port=_next_media_port(self.node) if wants_video else None,
                    accept_payloads=frozenset(self._extension_payloads()),
                )
            call.answer(sdp)

    # -- shared call tracking --------------------------------------------------------------
    def _track_call(self, call: Call, record: CallRecord, duration: float | None) -> None:
        if call.state is CallState.RINGING and record.ringing_at is None:
            record.ringing_at = self.sim.now
        if call.state is CallState.ESTABLISHED:
            record.established_at = self.sim.now
            self._start_media(call, record)
            if duration is not None:
                self.sim.schedule(duration, self._hangup_if_active, call)
        elif call.state in (CallState.TERMINATED, CallState.FAILED):
            record.ended_at = self.sim.now
            record.final_state = call.state.value
            record.failure_status = call.failure_status
            record.retry_after = call.retry_after
            self._stop_media(call, record)
        self._update_own_presence()

    def _hangup_if_active(self, call: Call) -> None:
        if call.state is CallState.ESTABLISHED:
            call.hangup()

    # -- media ------------------------------------------------------------------------------
    def _extension_payloads(self) -> list[int]:
        """Auxiliary payload types this phone advertises in SDP (§5j)."""
        extra = []
        if self.redundancy > 0:
            extra.append(RED_PAYLOAD_TYPE)
        if self.vad:
            extra.append(COMFORT_NOISE_PAYLOAD_TYPE)
        if self.dtmf:
            extra.append(TELEPHONE_EVENT_PAYLOAD_TYPE)
        return extra

    def _start_media(self, call: Call, record: CallRecord) -> None:
        if not self.media or call.local_sdp is None:
            return
        remote = call.remote_rtp_endpoint
        audio = call.local_sdp.audio
        if remote is None or audio is None:
            return
        codec = self.codec
        local_payloads = audio.payload_types
        codec_payloads = [pt for pt in local_payloads if pt not in AUXILIARY_PAYLOAD_TYPES]
        if codec_payloads:
            try:
                codec = codec_for_payload_type(codec_payloads[0])
            except Exception:
                codec = self.codec
        # RFC 2198 only runs when both sides listed the red payload type.
        remote_audio = call.remote_sdp.audio if call.remote_sdp is not None else None
        remote_payloads = remote_audio.payload_types if remote_audio is not None else []
        red_negotiated = (
            RED_PAYLOAD_TYPE in local_payloads and RED_PAYLOAD_TYPE in remote_payloads
        )
        session = RtpSession(
            self.node,
            local_port=audio.port,
            remote=remote,
            codec=codec,
            playout_delay=self.playout_delay,
            jitter_policy=self.jitter_policy,
            redundancy=self.redundancy if red_negotiated else 0,
            vad=self.vad,
        )
        session.start_sending()
        self._media_sessions[call.call_id] = session
        call.on_media = self._on_media_update
        self._start_video(call)

    def send_dtmf(self, call: Call, digits: str, duration: float = 0.08) -> None:
        """Send DTMF ``digits`` on an established call's media stream."""
        session = self._media_sessions.get(call.call_id)
        if session is None:
            raise CodecError("call has no active media session for DTMF")
        session.send_dtmf(digits, duration)

    def _start_video(self, call: Call) -> None:
        if not self.video or call.local_sdp is None or call.remote_sdp is None:
            return
        local_video = call.local_sdp.video
        remote_endpoint = call.remote_sdp.video_endpoint
        if local_video is None or remote_endpoint is None:
            return
        session = RtpSession(
            self.node,
            local_port=local_video.port,
            remote=remote_endpoint,
            codec=self.video_codec,
            playout_delay=self.playout_delay,
        )
        session.start_sending()
        self._video_sessions[call.call_id] = session

    def _on_media_update(self, call: Call) -> None:
        """React to a re-INVITE: pause or resume the RTP streams."""
        session = self._media_sessions.get(call.call_id)
        video = self._video_sessions.get(call.call_id)
        if call.media_direction in ("sendrecv", "sendonly"):
            remote = call.remote_rtp_endpoint
            if session is not None and remote is not None:
                session.start_sending(remote)
            if video is not None and call.remote_sdp is not None:
                video_remote = call.remote_sdp.video_endpoint
                if video_remote is not None:
                    video.start_sending(video_remote)
        else:
            if session is not None:
                session.stop_sending()
            if video is not None:
                video.stop_sending()

    # -- hold / resume ------------------------------------------------------------
    def hold(self, call: Call, on_result=None) -> None:
        """Put an established call on hold (re-INVITE, media inactive)."""
        call.hold(on_result)
        self._on_media_update(call)

    def resume(self, call: Call, on_result=None) -> None:
        """Take a held call off hold (re-INVITE, media sendrecv)."""
        call.resume(on_result)
        self._on_media_update(call)

    def _stop_media(self, call: Call, record: CallRecord) -> None:
        video = self._video_sessions.pop(call.call_id, None)
        if video is not None:
            video.stop_sending()
            if video.packets_received > 0:
                delays = video.delays
                record.video = VideoStats(
                    frames_expected=video.packets_expected,
                    frames_received=video.packets_received,
                    mean_delay=sum(delays) / len(delays) if delays else 0.0,
                )
            video.close()
        session = self._media_sessions.pop(call.call_id, None)
        if session is None:
            return
        session.stop_sending()
        talk_time = record.talk_time
        expected = None
        # With silence suppression the sender legitimately skips frames, so
        # the talk-time estimate would miscount silence as loss; the
        # sequence-number range (the session's own estimate) stays correct
        # because comfort-noise and event frames consume sequence numbers.
        # session.vad covers our sender; received CN frames reveal the peer's.
        if talk_time is not None and talk_time > 0 and not session.vad and session.cn_received == 0:
            expected = max(1, int(talk_time / session.codec.frame_interval) - 1)
        if session.packets_received > 0:
            record.quality = session.quality(expected_override=expected)
        session.close()

    # -- reporting -----------------------------------------------------------------------------
    def established_calls(self) -> list[CallRecord]:
        return [record for record in self.history if record.established]

    def failed_calls(self) -> list[CallRecord]:
        return [
            record
            for record in self.history
            if record.final_state == "failed" and not record.established
        ]


_MEDIA_PORT_ATTR = "_softphone_next_media_port"


def _next_media_port(node: Node) -> int:
    """Per-node even RTP port allocator (RTP convention)."""
    port = getattr(node, _MEDIA_PORT_ATTR, 16384)
    setattr(node, _MEDIA_PORT_ATTR, port + 2)
    return port
