"""Component configuration.

:class:`SipAccount` mirrors the VoIP application settings dialog of
Figure 2: username, SIP provider domain, and the one MANET-specific change
the paper requires — the outbound proxy pointed at ``localhost``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.manet_slp import ManetSlpConfig
from repro.errors import ConfigError
from repro.sip.uri import SipUri


@dataclass
class SipAccount:
    """A VoIP application account (the Figure 2 dialog)."""

    username: str
    domain: str
    display_name: str | None = None
    #: Digest-authentication password at the provider (None = no auth).
    password: str | None = None
    #: The paper's single required tweak: route all SIP through localhost.
    outbound_proxy: str = "localhost"
    outbound_proxy_port: int = 5060
    #: The provider-mandated outbound proxy, if any (polyphone.ethz.ch case).
    #: A stock VoIP app cannot convey this to SIPHoc — the field was
    #: overwritten with "localhost" — which reproduces the paper's open
    #: issue. Setting it here enables the paper's proposed future-work fix.
    provider_outbound_proxy: str | None = None
    provider_outbound_proxy_port: int = 5060

    def __post_init__(self) -> None:
        if not self.username:
            raise ConfigError("SIP account needs a username")
        if not self.domain:
            raise ConfigError("SIP account needs a provider domain")

    @property
    def aor(self) -> SipUri:
        """The account's address of record, e.g. ``sip:alice@voicehoc.ch``."""
        return SipUri(user=self.username, host=self.domain)

    @property
    def uses_local_proxy(self) -> bool:
        return self.outbound_proxy in ("localhost", "127.0.0.1")

    @property
    def credentials(self):
        """SIP digest credentials, or None when no password is set."""
        if self.password is None:
            return None
        from repro.sip.auth import Credentials

        return Credentials(username=self.username, password=self.password)


@dataclass
class HandoverConfig:
    """Knobs for the §5k mid-call multihomed handover policy.

    Attach one to :attr:`SiphocConfig.handover` to enable handover on a
    node; the default ``None`` keeps the policy entirely out of the event
    schedule, so every existing byte-identity gate is unaffected.
    """

    #: Inbound RTP silence (seconds) that triggers a handover probe.
    rtp_silence_timeout: float = 1.0
    #: How long the wireless neighbor set must stay empty before the
    #: neighbor-loss trigger fires (hysteresis window, seconds).
    neighbor_loss_window: float = 1.0
    #: Period of the trigger-probe loop (seconds).
    probe_interval: float = 0.25
    #: Base delay of the jittered migration retry backoff (seconds).
    retry_base: float = 0.25
    #: Backoff ceiling (seconds).
    max_backoff: float = 2.0
    #: A migration attempt with no answer after this long is retried.
    attempt_timeout: float = 2.0
    #: Total time budget per call before the policy gives up and tears the
    #: call down cleanly instead of wedging (seconds).
    giveup_after: float = 6.0
    #: How long after a successful migration to watch for inbound media
    #: before giving up on the media_restored measurement (seconds).
    media_watch_window: float = 5.0

    def __post_init__(self) -> None:
        if self.probe_interval <= 0:
            raise ConfigError("handover probe_interval must be positive")
        if self.giveup_after <= 0:
            raise ConfigError("handover giveup_after must be positive")


@dataclass
class SiphocConfig:
    """Knobs for the per-node SIPHoc component stack."""

    slp: ManetSlpConfig = field(default_factory=ManetSlpConfig)
    proxy_port: int = 5060
    #: Port of the proxy's WAN leg (on the tunnel or wired interface).
    wan_port: int = 5061
    gateway_poll_interval: float = 5.0
    #: Forward local REGISTERs to the Internet provider when connected, so
    #: calls from the Internet reach MANET users (section 3.2 of the paper).
    register_upstream: bool = True
    #: Lifetime of the SIP-contact adverts the proxy publishes via MANET SLP.
    contact_advert_lifetime: float = 120.0
    # -- overload control (DESIGN.md §5f; everything defaults to off) --------
    #: Reject new INVITE/REGISTER with 503 while this many proxied
    #: dialog-initiating requests await a final response (None = no limit).
    admission_max_inflight: int | None = None
    #: Reject while the node's bounded TX queue is at or beyond this
    #: occupancy fraction, e.g. 0.75 (None = ignore queue depth).
    admission_queue_watermark: float | None = None
    #: Retry-After delta-seconds advertised on admission rejections.
    admission_retry_after: int = 5
    #: Cap on concurrently active tunnel leases at a gateway this node runs
    #: (None = unlimited); excess CTRL_REQUESTs are NAKed to retry later.
    gateway_max_leases: int | None = None
    #: Mid-call multihomed handover policy (§5k); None = disabled.
    handover: HandoverConfig | None = None
