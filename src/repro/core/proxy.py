"""The SIPHoc Proxy: a standard SIP outbound proxy with MANET smarts.

Per node, the local VoIP application points its outbound proxy at this
component (Figure 2). The proxy then implements the paper's call flow
(Figure 3):

1. REGISTER from the local app is answered locally and the user->endpoint
   binding is advertised through MANET SLP (steps 1-4).
2. INVITE from the local app triggers a MANET SLP lookup for the callee;
   the request is forwarded to the responsible remote proxy, which passes
   it to its local application (steps 5-8).
3. With a Connection Provider attached to a gateway, the proxy gains a WAN
   leg on the tunnel interface: local REGISTERs are additionally forwarded
   to the account's Internet provider (with the contact rewritten to the
   tunnel address) and unresolvable callees are routed to the Internet —
   the transparency story of section 3.2, including the failure mode of
   providers that mandate their own outbound proxy.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.core.config import SipAccount, SiphocConfig
from repro.core.connection import ConnectionProvider
from repro.core.manet_slp import ManetSlp
from repro.core.media_relay import MediaRelay
from repro.netsim.node import Node
from repro.sip.dialog import new_call_id, new_tag
from repro.sip.message import Headers, SipRequest, SipResponse
from repro.sip.proxy import AdmissionControl, ProxyCore, ProxyLeg, RoutingContext
from repro.sip.registrar import LocationService
from repro.sip.transport import SipTransport
from repro.sip.uri import NameAddr, SipUri
from repro.slp.service import SERVICE_SIP_CONTACT, ServiceEntry, ServiceUrl

DnsResolver = Callable[[str], str | None]


class SiphocProxy:
    """One SIPHoc proxy instance (one per MANET node)."""

    def __init__(
        self,
        node: Node,
        manet_slp: ManetSlp,
        config: SiphocConfig | None = None,
        connection: ConnectionProvider | None = None,
        dns_resolver: DnsResolver | None = None,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.config = config or SiphocConfig()
        self.manet_slp = manet_slp
        self.connection = connection
        self.dns_resolver = dns_resolver
        self.closed = False
        self.core = ProxyCore(node, port=self.config.proxy_port)
        self.core.on_register = self._handle_register
        self.core.route_fn = self._route
        if (
            self.config.admission_max_inflight is not None
            or self.config.admission_queue_watermark is not None
        ):
            self.core.admission = AdmissionControl(
                max_inflight=self.config.admission_max_inflight,
                queue_watermark=self.config.admission_queue_watermark,
                retry_after=self.config.admission_retry_after,
            )
        self.media_relay = MediaRelay(node)
        self.core.media_filter = self._media_filter
        self.location = LocationService()
        self.accounts: dict[str, SipAccount] = {}
        self.upstream_registrations: dict[str, bool] = {}
        self._wan_leg: ProxyLeg | None = None
        self._register_cseq = itertools.count(1)
        if connection is not None:
            connection.on_connected = self._on_internet_up
            connection.on_disconnected = self._on_internet_down
        if node.wired_ip is not None:
            # This node *is* a gateway: its WAN leg rides the wired interface.
            self._attach_wan_leg(node.wired_ip)

    # -- public API --------------------------------------------------------------
    @property
    def address(self) -> str:
        return self.core.address

    @property
    def port(self) -> int:
        return self.core.port

    @property
    def internet_available(self) -> bool:
        return self._wan_leg is not None

    @property
    def inflight_forwards(self) -> int:
        """Dialog-initiating forwards still awaiting a final response."""
        return self.core.inflight_forwards

    @property
    def inflight_peak(self) -> int:
        """Highest :attr:`inflight_forwards` ever observed."""
        return self.core.inflight_peak

    @property
    def rejected_overload(self) -> int:
        """Requests shed by admission control with a 503."""
        return self.core.rejected_overload

    def configure_account(self, account: SipAccount) -> None:
        """Make provider-specific settings (e.g. the mandated outbound proxy
        of the polyphone case) known to the proxy — the paper's future-work
        fix, since a stock VoIP app cannot convey them in-band."""
        self.accounts[str(account.aor.address_of_record)] = account

    def close(self) -> None:
        self.closed = True
        self.media_relay.close()
        self.core.close()

    # -- media ALG: SDP rewriting for leg-crossing calls -------------------------
    def _media_filter(self, kind: str, message, in_leg, out_leg) -> None:
        """Relay media for calls that cross the MANET/Internet boundary.

        The softphone's SDP names its MANET address, which the far side of
        the tunnel cannot route to — so the proxy splices itself into the
        media path (standard border-gateway behaviour).
        """
        call_id = message.call_id or ""
        if not call_id:
            return
        cseq = message.cseq
        if kind == "request":
            if message.method == "BYE":
                self.media_relay.close_session(call_id)
                return
            if message.method != "INVITE" or not message.body:
                return
            message.body = self.media_relay.rewrite_offer(
                call_id, message.body, a_address=in_leg.address, b_address=out_leg.address
            )
            return
        # Responses: rewrite the SDP answer travelling back across legs.
        if cseq is None or cseq.method != "INVITE" or not message.body:
            return
        if not (message.is_success or message.status in (180, 183)):
            return
        message.body = self.media_relay.rewrite_answer(call_id, message.body)

    # -- WAN leg lifecycle ----------------------------------------------------------
    def _attach_wan_leg(self, wan_address: str) -> None:
        if self._wan_leg is not None:
            return
        transport = SipTransport(
            self.node, port=self.config.wan_port, address_override=wan_address
        )
        self._wan_leg = self.core.add_leg("wan", transport)
        self.node.stats.increment("siphoc.wan_leg_up")
        if self.config.register_upstream:
            for aor in list(self.location.bindings(self.sim.now)):
                self._register_upstream(aor)

    def _on_internet_up(self, tunnel_ip: str) -> None:
        self._attach_wan_leg(tunnel_ip)

    def _on_internet_down(self) -> None:
        if self._wan_leg is not None:
            self.core.remove_leg("wan")
            self._wan_leg = None
            self.upstream_registrations.clear()
            self.node.stats.increment("siphoc.wan_leg_down")

    # -- REGISTER handling (steps 1-2 of Figure 3) --------------------------------------
    def _handle_register(self, ctx: RoutingContext) -> None:
        request = ctx.request
        to = request.to
        contact = request.contact
        if to is None or contact is None:
            ctx.respond(400)
            return
        aor = to.uri.address_of_record
        expires = self._parse_expires(request)
        if expires <= 0:
            self.location.remove(aor, contact.uri)
            self.manet_slp.deregister(self._contact_service_url())
            ctx.respond(200)
            return
        self.location.register(aor, contact.uri, expires, self.sim.now)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("sip.register", self.node.ip, aor=aor, expires=expires)
        # Step 2: advertise ourselves as the SIP endpoint for this user.
        self.manet_slp.register(
            self._contact_service_url(),
            attributes={"user": aor},
            lifetime=min(float(expires), self.config.contact_advert_lifetime),
        )
        self.node.stats.increment("siphoc.registrations")
        ctx.respond(200)
        if self.internet_available and self.config.register_upstream:
            self._register_upstream(aor)

    def _contact_service_url(self) -> ServiceUrl:
        return ServiceUrl(
            service_type=SERVICE_SIP_CONTACT, host=self.node.ip, port=self.port
        )

    @staticmethod
    def _parse_expires(request: SipRequest) -> int:
        raw = request.headers.get("Expires")
        try:
            return int(raw) if raw is not None else 3600
        except ValueError:
            return 3600

    # -- upstream registration (section 3.2) -----------------------------------------------
    def _register_upstream(self, aor: str) -> None:
        leg = self._wan_leg
        if leg is None:
            return
        aor_uri = SipUri.parse(aor)
        destination = self._provider_destination(aor_uri.host, aor)
        if destination is None:
            self.upstream_registrations[aor] = False
            self.node.stats.increment("siphoc.upstream_register_unroutable")
            return
        account = self.accounts.get(aor)
        credentials = account.credentials if account is not None else None

        def attempt(authorization: str | None, already_tried_auth: bool) -> None:
            headers = Headers()
            identity = NameAddr(uri=aor_uri)
            headers.add("From", str(identity.with_tag(new_tag())))
            headers.add("To", str(identity))
            headers.add("Call-ID", new_call_id(leg.address))
            headers.add("CSeq", f"{next(self._register_cseq)} REGISTER")
            headers.add("Max-Forwards", "70")
            # The binding we push upstream is OUR tunnel-side endpoint, so
            # Internet calls for this user land on the WAN leg and get
            # relayed into the MANET.
            wan_contact = SipUri(user=aor_uri.user, host=leg.address, port=leg.port)
            headers.add("Contact", f"<{wan_contact}>")
            headers.add("Expires", "3600")
            if authorization is not None:
                headers.add("Authorization", authorization)
            request = SipRequest(
                "REGISTER", SipUri(user=None, host=aor_uri.host), headers=headers
            )

            def on_response(response: SipResponse) -> None:
                if (
                    response.status == 401
                    and not already_tried_auth
                    and credentials is not None
                ):
                    challenge = response.headers.get("WWW-Authenticate")
                    if challenge:
                        answer = credentials.authorization_for(
                            challenge, "REGISTER", str(request.uri)
                        )
                        if answer is not None:
                            attempt(answer, True)
                            return
                self.upstream_registrations[aor] = response.is_success
                if response.is_success:
                    self.node.stats.increment("siphoc.upstream_register_ok")
                else:
                    self.node.stats.increment("siphoc.upstream_register_rejected")

            def on_timeout() -> None:
                self.upstream_registrations[aor] = False
                self.node.stats.increment("siphoc.upstream_register_timeout")

            leg.transactions.send_request(request, destination, on_response, on_timeout)

        attempt(None, already_tried_auth=False)

    def _provider_destination(self, domain: str, aor: str | None = None) -> tuple[str, int] | None:
        """Resolve where to reach the Internet provider for ``domain``.

        Honors a configured provider outbound proxy (the future-work fix);
        otherwise the next hop is deduced from the domain itself, which is
        exactly what breaks for polyphone-style providers.
        """
        if self.dns_resolver is None:
            return None
        account = self.accounts.get(aor or "")
        if account is not None and account.provider_outbound_proxy:
            host = account.provider_outbound_proxy
            ip = self.dns_resolver(host) or host
            return (ip, account.provider_outbound_proxy_port)
        ip = self.dns_resolver(domain)
        if ip is None:
            return None
        return (ip, 5060)

    # -- call routing (steps 5-7 of Figure 3) -------------------------------------------------
    def _route(self, ctx: RoutingContext) -> None:
        request = ctx.request
        uri = request.uri
        # Inbound from the Internet: request URI carries our WAN address.
        if self.node.is_local_address(uri.host) or uri.host == self.address:
            self._deliver_to_local_user(ctx, uri)
            return
        aor = SipUri(user=uri.user, host=uri.host).address_of_record
        # A user registered on this very node?
        contacts = self.location.lookup(aor, self.sim.now)
        if contacts:
            contact = contacts[0]
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    "sip.route", self.node.ip, via="local", aor=aor,
                    method=request.method,
                )
            ctx.forward((contact.host, contact.effective_port()), uri=contact)
            return
        # Step 6: consult MANET SLP for the responsible proxy.
        predicate = f"(user={aor})"
        self.node.stats.increment("siphoc.slp_lookups")
        self.manet_slp.find_services(
            SERVICE_SIP_CONTACT,
            predicate,
            callback=lambda entries: self._on_lookup_result(ctx, aor, entries),
        )

    def _on_lookup_result(
        self, ctx: RoutingContext, aor: str, entries: list[ServiceEntry]
    ) -> None:
        if self.closed or ctx.decided:
            # A lookup can resolve after the proxy closed (node crash):
            # forwarding would send on dead sockets.
            return
        tracer = self.sim.tracer
        remote = [entry for entry in entries if entry.url.host != self.node.ip]
        if remote:
            # Step 7: forward to the responsible proxy's SIP endpoint.
            target = remote[0].url
            if tracer is not None:
                tracer.emit(
                    "sip.route", self.node.ip, via="manet", aor=aor,
                    next_proxy=target.host,
                )
            ctx.forward((target.host, target.port or self.config.proxy_port))
            self.node.stats.increment("siphoc.routed_in_manet")
            return
        if self.internet_available:
            aor_uri = SipUri.parse(aor)
            # A provider-mandated outbound proxy applies to the *caller's*
            # account: all its outgoing traffic must traverse that proxy.
            from_ = ctx.request.from_
            caller_aor = from_.uri.address_of_record if from_ is not None else None
            destination = self._provider_destination(aor_uri.host, caller_aor)
            if destination is not None and self._wan_leg is not None:
                if tracer is not None:
                    tracer.emit(
                        "sip.route", self.node.ip, via="internet", aor=aor,
                        destination=destination[0],
                    )
                ctx.forward(destination, out_leg=self._wan_leg)
                self.node.stats.increment("siphoc.routed_to_internet")
                return
        self.node.stats.increment("siphoc.routing_failed")
        if tracer is not None:
            tracer.emit("sip.route_failed", self.node.ip, aor=aor)
        ctx.respond(404, "User Not Found In MANET")

    def _deliver_to_local_user(self, ctx: RoutingContext, uri: SipUri) -> None:
        """Step 8: hand the request to the local VoIP application."""
        contact = None
        if uri.user is not None:
            now = self.sim.now
            for aor, bindings in self.location.bindings(now).items():
                if SipUri.parse(aor).user == uri.user and bindings:
                    contact = bindings[0].contact
                    break
        if contact is None:
            ctx.respond(404, "No Such Local User")
            return
        ctx.forward(
            (contact.host, contact.effective_port()),
            uri=contact,
            out_leg=self.core.primary,
        )
        self.node.stats.increment("siphoc.delivered_to_local_app")
