"""RTP media relay for calls crossing the MANET/Internet boundary.

A softphone inside the MANET advertises its MANET address in SDP, which is
unroutable from the Internet. When the SIPHoc proxy forwards an INVITE (or
its answer) across legs — MANET <-> tunnel/WAN — it therefore rewrites the
session description to point at local relay ports on the crossing
interface and pumps RTP between the two sides, exactly like the media path
of a session border gateway. One relay *channel* (a pair of sockets) is
allocated per media stream, so audio+video calls relay both. Calls that
stay inside the MANET never cross legs and keep their direct media path.

Terminology per session: side *A* is the leg the INVITE arrived on, side
*B* the leg it left through. The offer describes A's real endpoints; the
answer describes B's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SipParseError
from repro.netsim.node import Node, UdpSocket
from repro.sip.sdp import MediaDescription, SessionDescription, parse_sdp

#: Relay ports live high in the RTP range, clear of softphone allocations.
RELAY_PORT_BASE = 28000
IDLE_TIMEOUT = 90.0


@dataclass
class RelayChannel:
    """One relayed media stream: two sockets, two learned remote endpoints."""

    a_socket: UdpSocket
    b_socket: UdpSocket
    a_remote: tuple[str, int] | None = None
    b_remote: tuple[str, int] | None = None

    @property
    def a_port(self) -> int:
        return self.a_socket.port

    @property
    def b_port(self) -> int:
        return self.b_socket.port

    def close(self) -> None:
        self.a_socket.close()
        self.b_socket.close()


@dataclass
class RelaySession:
    """One relayed call: a channel per media stream."""

    call_id: str
    a_address: str
    b_address: str
    channels: list[RelayChannel] = field(default_factory=list)
    last_activity: float = 0.0
    packets_relayed: int = 0

    def close(self) -> None:
        for channel in self.channels:
            channel.close()

    # Backwards-friendly accessors for the common audio-only case.
    @property
    def a_port(self) -> int:
        return self.channels[0].a_port

    @property
    def b_port(self) -> int:
        return self.channels[0].b_port

    @property
    def a_remote(self):
        return self.channels[0].a_remote if self.channels else None

    @property
    def b_remote(self):
        return self.channels[0].b_remote if self.channels else None


class MediaRelay:
    """Per-node relay managing all boundary-crossing media sessions."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.sim = node.sim
        self._sessions: dict[str, RelaySession] = {}
        self._next_port = RELAY_PORT_BASE
        self._gc_task = self.sim.schedule_periodic(30.0, self._collect_idle)

    def close(self) -> None:
        self._gc_task.stop()
        for session in list(self._sessions.values()):
            session.close()
        self._sessions.clear()

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)

    def session_for(self, call_id: str) -> RelaySession | None:
        return self._sessions.get(call_id)

    # -- session management ------------------------------------------------------
    def _allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 2
        return port

    def open(self, call_id: str, a_address: str, b_address: str) -> RelaySession:
        existing = self._sessions.get(call_id)
        if existing is not None:
            return existing
        session = RelaySession(
            call_id=call_id,
            a_address=a_address,
            b_address=b_address,
            last_activity=self.sim.now,
        )
        self._sessions[call_id] = session
        self.node.stats.increment("mediarelay.sessions_opened")
        return session

    def _ensure_channels(self, session: RelaySession, count: int) -> None:
        while len(session.channels) < count:
            channel = RelayChannel(
                a_socket=self.node.bind(self._allocate_port(), lambda *args: None),
                b_socket=self.node.bind(self._allocate_port(), lambda *args: None),
            )
            channel.a_socket.handler = (
                lambda data, src, sport, ch=channel, s=session: self._pump(s, ch, data, "b")
            )
            channel.b_socket.handler = (
                lambda data, src, sport, ch=channel, s=session: self._pump(s, ch, data, "a")
            )
            session.channels.append(channel)

    def close_session(self, call_id: str) -> None:
        session = self._sessions.pop(call_id, None)
        if session is not None:
            session.close()

    def _pump(
        self, session: RelaySession, channel: RelayChannel, data: bytes, to_side: str
    ) -> None:
        session.last_activity = self.sim.now
        session.packets_relayed += 1
        remote = channel.b_remote if to_side == "b" else channel.a_remote
        socket = channel.b_socket if to_side == "b" else channel.a_socket
        if remote is not None:
            socket.send(remote[0], remote[1], data)

    def _collect_idle(self) -> None:
        now = self.sim.now
        for call_id, session in list(self._sessions.items()):
            if now - session.last_activity > IDLE_TIMEOUT:
                self.close_session(call_id)
                self.node.stats.increment("mediarelay.sessions_expired")

    # -- SDP rewriting --------------------------------------------------------------
    def rewrite_offer(
        self, call_id: str, body: bytes, a_address: str, b_address: str
    ) -> bytes:
        """Rewrite an offer crossing A -> B; learns A's real endpoints."""
        try:
            sdp = parse_sdp(body)
        except SipParseError:
            return body
        if not any(m.port > 0 for m in sdp.media):
            return body
        session = self.open(call_id, a_address, b_address)
        # One channel per m-line position: RFC 3264 answers mirror the
        # offer's ordering, so positional indexing stays consistent.
        self._ensure_channels(session, len(sdp.media))
        ports = []
        for index, media in enumerate(sdp.media):
            if media.port > 0:
                channel = session.channels[index]
                channel.a_remote = (sdp.connection_address, media.port)
                ports.append(channel.b_port)
            else:
                ports.append(0)
        return _rewritten(sdp, session.b_address, ports)

    def rewrite_answer(self, call_id: str, body: bytes) -> bytes:
        """Rewrite an answer crossing B -> A; learns B's real endpoints."""
        session = self._sessions.get(call_id)
        if session is None:
            return body
        try:
            sdp = parse_sdp(body)
        except SipParseError:
            return body
        ports = []
        for index, media in enumerate(sdp.media):
            if media.port > 0 and index < len(session.channels):
                channel = session.channels[index]
                channel.b_remote = (sdp.connection_address, media.port)
                ports.append(channel.a_port)
            else:
                ports.append(0)
        return _rewritten(sdp, session.a_address, ports)


def _rewritten(sdp: SessionDescription, address: str, ports: list[int]) -> bytes:
    media = [
        MediaDescription(
            media=description.media,
            port=port,
            protocol=description.protocol,
            payload_types=list(description.payload_types),
            attributes=list(description.attributes),
        )
        for description, port in zip(sdp.media, ports)
    ]
    rewritten = SessionDescription(
        origin_address=address,
        connection_address=address,
        session_name=sdp.session_name,
        session_id=sdp.session_id,
        session_version=sdp.session_version + 1,
        media=media,
    )
    return rewritten.serialize()
