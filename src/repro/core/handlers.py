"""Routing handler plugins: the protocol-specific piggybacking logic.

The paper: *"To assure generality, the routing specific functionality is
encapsulated within a routing handler — a software module that receives raw
routing packets as input and generates altered packets that include the
piggybacked service information."*

Both plugins operate purely through the node's netfilter hook chains on the
routing daemon's UDP port; the daemons themselves are untouched.

* :class:`AodvHandler` — adverts ride outgoing RREQ/RREP packets; lookups
  are mapped onto route discoveries for the reserved SLP anycast address,
  and answers return as RREPs carrying a SrvRply (the Figure 5 capture).
  As a bonus, the answer's RREP *installs the route* the subsequent SIP
  INVITE will use — SIPHoc's headline efficiency trick.

* :class:`OlsrHandler` — SLP payloads travel as OLSR messages of type 130,
  which RFC 3626's default forwarding algorithm floods through the MPR
  backbone without understanding them. Adverts therefore disseminate
  proactively network-wide; lookups are usually local cache hits.
"""

from __future__ import annotations

import abc
import itertools
from typing import TYPE_CHECKING

from repro.core.extension import (
    EXT_SLP_ADVERT,
    advert_extension,
    decode_extension,
    query_extension,
    reply_extension,
)
from repro.errors import CodecError
from repro.netsim.capture import Chain, Verdict
from repro.netsim.packet import BROADCAST, Packet
from repro.routing.aodv import SLP_ANYCAST, Aodv
from repro.routing.messages import (
    OLSR_SLP,
    Extension,
    OlsrMessage,
    Rrep,
    Rreq,
    RREQ_FLAG_DEST_ONLY,
    RREQ_FLAG_UNKNOWN_SEQ,
    decode_aodv,
    decode_olsr_packet,
    encode_aodv,
    encode_olsr_packet,
)
from repro.routing.olsr import Olsr
from repro.slp.messages import (
    SlpMessage,
    SrvDeReg,
    SrvReg,
    SrvRply,
    SrvRqst,
    UrlEntry,
    decode_slp,
    encode_slp,
)
from repro.slp.service import ServiceEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.manet_slp import ManetSlp


class RoutingHandler(abc.ABC):
    """Common plugin machinery: the pending-advert queue and SLP dispatch."""

    protocol_name = "generic"

    def __init__(self) -> None:
        self.slp: "ManetSlp | None" = None
        self._pending: dict[str, tuple[SlpMessage, int]] = {}
        self._seen_queries: dict[tuple[str, int], float] = {}
        self._xid = itertools.count(1)

    def attach(self, slp: "ManetSlp") -> None:
        self.slp = slp

    @property
    def node(self):
        raise NotImplementedError

    @property
    def sim(self):
        return self.node.sim

    # -- ManetSlp-facing API ---------------------------------------------------
    def advertise(self, entry: ServiceEntry) -> None:
        """Queue a service announcement for piggybacking."""
        redundancy = self.slp.config.advert_redundancy if self.slp else 2
        message = SrvReg(
            xid=next(self._xid),
            entry=UrlEntry.from_service_entry(entry, entry.lifetime),
        )
        self._pending[entry.key()] = (message, redundancy)

    def withdraw(self, entry: ServiceEntry) -> None:
        redundancy = self.slp.config.advert_redundancy if self.slp else 2
        message = SrvDeReg(xid=next(self._xid), url=entry.key())
        self._pending[entry.key()] = (message, redundancy)

    @abc.abstractmethod
    def query(self, request: SrvRqst) -> None:
        """Launch an in-band network lookup."""

    @abc.abstractmethod
    def reply(self, response: SrvRply, requester_ip: str) -> None:
        """Deliver a lookup answer back toward ``requester_ip``."""

    # -- shared plumbing -----------------------------------------------------------
    def take_pending(self, budget: int, exclude: set[str] | None = None) -> list[SlpMessage]:
        """Dequeue up to ``budget`` queued announcements for one packet."""
        taken: list[SlpMessage] = []
        for key in list(self._pending):
            if len(taken) >= budget:
                break
            if exclude and key in exclude:
                continue
            message, sends_left = self._pending[key]
            taken.append(message)
            if sends_left <= 1:
                del self._pending[key]
            else:
                self._pending[key] = (message, sends_left - 1)
        return taken

    def pending_count(self) -> int:
        return len(self._pending)

    def handle_slp_message(self, message: SlpMessage, sender_ip: str) -> None:
        """Dispatch an SLP payload extracted from a routing packet."""
        if self.slp is None:
            return
        now = self.sim.now
        if isinstance(message, SrvReg):
            try:
                entry = message.entry.to_service_entry(now, origin=sender_ip)
            except Exception:
                self.node.stats.increment("manetslp.bad_adverts")
                return
            self.slp.on_remote_entry(entry)
        elif isinstance(message, SrvDeReg):
            self.slp.on_remote_removal(message.url)
        elif isinstance(message, SrvRqst):
            self._handle_query(message)
        elif isinstance(message, SrvRply):
            for url_entry in message.entries:
                try:
                    entry = url_entry.to_service_entry(now, origin=sender_ip)
                except Exception:
                    continue
                self.slp.on_remote_entry(entry)

    def _handle_query(self, request: SrvRqst) -> None:
        assert self.slp is not None
        if not request.requester or request.requester == self.node.ip:
            return
        key = (request.requester, request.xid)
        now = self.sim.now
        if self._seen_queries.get(key, 0.0) > now:
            return
        self._seen_queries[key] = now + 30.0
        if len(self._seen_queries) > 1024:
            self._seen_queries = {
                k: v for k, v in self._seen_queries.items() if v > now
            }
        matches = self.slp.local_matches(request.service_type, request.predicate)
        if not matches:
            return
        response = SrvRply(
            xid=request.xid,
            entries=[
                UrlEntry.from_service_entry(entry, entry.expires_at - now)
                for entry in matches
            ],
        )
        # Defer slightly so the routing daemon processes the carrier packet
        # (e.g. installs the reverse route) before the answer is sent.
        delay = 0.005 + self.sim.rng.uniform(0, 0.01)
        self.sim.schedule(delay, self.reply, response, request.requester)


class AodvHandler(RoutingHandler):
    """SLP piggybacking over AODV route discovery traffic."""

    protocol_name = "aodv"
    REPLY_LIFETIME_MS = 60_000

    def __init__(self, routing: Aodv) -> None:
        super().__init__()
        self.routing = routing
        self._node = routing.node
        self._node.hooks.register(
            Chain.OUTPUT, {Aodv.port}, self._on_output, name="siphoc-slp-aodv-out"
        )
        self._node.hooks.register(
            Chain.INPUT, {Aodv.port}, self._on_input, name="siphoc-slp-aodv-in"
        )

    @property
    def node(self):
        return self._node

    # -- hooks -------------------------------------------------------------------
    def _on_output(self, packet: Packet) -> tuple[Verdict, Packet]:
        if not self._pending:
            return (Verdict.ACCEPT, packet)
        try:
            message, extensions = decode_aodv(packet.data)
        except CodecError:
            return (Verdict.ACCEPT, packet)
        carrier = isinstance(message, Rreq) or (
            isinstance(message, Rrep) and not message.is_hello()
        )
        if not carrier:
            return (Verdict.ACCEPT, packet)
        budget = self.slp.config.piggyback_budget if self.slp else 3
        already = _advertised_urls(extensions)
        fresh = self.take_pending(budget, exclude=already)
        if not fresh:
            return (Verdict.ACCEPT, packet)
        new_extensions = list(extensions) + [advert_extension(m) for m in fresh]
        self.node.stats.increment("manetslp.adverts_piggybacked", len(fresh))
        return (Verdict.ACCEPT, packet.with_data(encode_aodv(message, new_extensions)))

    def _on_input(self, packet: Packet) -> tuple[Verdict, Packet]:
        try:
            _, extensions = decode_aodv(packet.data)
        except CodecError:
            return (Verdict.ACCEPT, packet)
        for extension in extensions:
            slp_message = decode_extension(extension)
            if slp_message is not None:
                self.handle_slp_message(slp_message, packet.src)
        return (Verdict.ACCEPT, packet)

    # -- lookups ------------------------------------------------------------------------
    def query(self, request: SrvRqst) -> None:
        """Map the SLP request onto a route discovery for the anycast address."""
        self.routing.seq_no += 1
        rreq = Rreq(
            rreq_id=self.routing.next_rreq_id(),
            dest_ip=SLP_ANYCAST,
            dest_seq=0,
            orig_ip=self.node.ip,
            orig_seq=self.routing.seq_no,
            hop_count=0,
            flags=RREQ_FLAG_DEST_ONLY | RREQ_FLAG_UNKNOWN_SEQ,
        )
        self.node.stats.increment("manetslp.queries_sent")
        self.routing.send_control(
            BROADCAST,
            encode_aodv(rreq, [query_extension(request)]),
            ttl=Aodv.NET_DIAMETER,
        )

    def reply(self, response: SrvRply, requester_ip: str) -> None:
        """Answer with an RREP along the reverse route (Figure 5's packet)."""
        route = self.routing.route_to(requester_ip)
        if route is None:
            self.node.stats.increment("manetslp.reply_no_reverse_route")
            return
        # The RREP names *this node* as destination, so every hop on the way
        # back installs a forward route to us — the SIP INVITE that follows
        # the lookup finds its route already in place (SIPHoc's key trick).
        self.routing.seq_no += 1
        rrep = Rrep(
            dest_ip=self.node.ip,
            dest_seq=self.routing.seq_no,
            orig_ip=requester_ip,
            lifetime_ms=self.REPLY_LIFETIME_MS,
            hop_count=0,
        )
        self.node.stats.increment("manetslp.replies_sent")
        self.routing.send_control(
            route.next_hop,
            encode_aodv(rrep, [reply_extension(response)]),
            ttl=Aodv.NET_DIAMETER,
        )


class OlsrHandler(RoutingHandler):
    """SLP piggybacking over OLSR's MPR flooding (message type 130)."""

    protocol_name = "olsr"

    def __init__(self, routing: Olsr) -> None:
        super().__init__()
        self.routing = routing
        self._node = routing.node
        self._seen_messages: dict[tuple[str, int], float] = {}
        self._node.hooks.register(
            Chain.OUTPUT, {Olsr.port}, self._on_output, name="siphoc-slp-olsr-out"
        )
        self._node.hooks.register(
            Chain.INPUT, {Olsr.port}, self._on_input, name="siphoc-slp-olsr-in"
        )

    @property
    def node(self):
        return self._node

    def _make_message(self, payload: SlpMessage, vtime: float = 60.0) -> OlsrMessage:
        return OlsrMessage(
            msg_type=OLSR_SLP,
            orig_ip=self.node.ip,
            seq=self.routing.next_message_seq(),
            body=encode_slp(payload),
            vtime=vtime,
            ttl=255,
        )

    # -- hooks ---------------------------------------------------------------------
    def _on_output(self, packet: Packet) -> tuple[Verdict, Packet]:
        if not self._pending:
            return (Verdict.ACCEPT, packet)
        try:
            packet_seq, messages = decode_olsr_packet(packet.data)
        except CodecError:
            return (Verdict.ACCEPT, packet)
        budget = self.slp.config.piggyback_budget if self.slp else 3
        fresh = self.take_pending(budget)
        if not fresh:
            return (Verdict.ACCEPT, packet)
        vtime = self.slp.config.advert_lifetime if self.slp else 60.0
        messages = messages + [self._make_message(m, vtime=vtime) for m in fresh]
        self.node.stats.increment("manetslp.adverts_piggybacked", len(fresh))
        return (
            Verdict.ACCEPT,
            packet.with_data(encode_olsr_packet(packet_seq, messages)),
        )

    def _on_input(self, packet: Packet) -> tuple[Verdict, Packet]:
        try:
            _, messages = decode_olsr_packet(packet.data)
        except CodecError:
            return (Verdict.ACCEPT, packet)
        now = self.sim.now
        for message in messages:
            if message.msg_type != OLSR_SLP or message.orig_ip == self.node.ip:
                continue
            key = (message.orig_ip, message.seq)
            if self._seen_messages.get(key, 0.0) > now:
                continue
            self._seen_messages[key] = now + 60.0
            try:
                slp_message = decode_slp(message.body)
            except CodecError:
                self.node.stats.increment("manetslp.bad_adverts")
                continue
            self.handle_slp_message(slp_message, message.orig_ip)
        if len(self._seen_messages) > 2048:
            self._seen_messages = {
                k: v for k, v in self._seen_messages.items() if v > now
            }
        return (Verdict.ACCEPT, packet)

    # -- lookups --------------------------------------------------------------------------
    def query(self, request: SrvRqst) -> None:
        self.node.stats.increment("manetslp.queries_sent")
        self.routing.send_packet([self._make_message(request, vtime=10.0)])

    def reply(self, response: SrvRply, requester_ip: str) -> None:
        # Flooded so every node's cache benefits from the answer.
        self.node.stats.increment("manetslp.replies_sent")
        self.routing.send_packet([self._make_message(response, vtime=60.0)])


def _advertised_urls(extensions: list[Extension]) -> set[str]:
    """Service URLs already announced in a packet's extension list."""
    urls: set[str] = set()
    for extension in extensions:
        if extension.ext_type != EXT_SLP_ADVERT:
            continue
        message = decode_extension(extension)
        if isinstance(message, SrvReg):
            urls.add(message.entry.url)
        elif isinstance(message, SrvDeReg):
            urls.add(message.url)
    return urls


def make_handler(routing) -> RoutingHandler:
    """Instantiate the right plugin for a routing daemon."""
    if isinstance(routing, Aodv):
        return AodvHandler(routing)
    if isinstance(routing, Olsr):
        return OlsrHandler(routing)
    raise TypeError(f"no SIPHoc routing handler for {type(routing).__name__}")
