"""Internet SIP providers.

The paper tests three commercial providers: siphoc.ch and netvoip.ch (plain
registrar+proxy on the account domain) and polyphone.ethz.ch, which
*requires a dedicated outbound proxy* — the configuration SIPHoc cannot
honor because the softphone's outbound-proxy field was overwritten with
``localhost``. :class:`SipProvider` models both kinds; the strict kind
rejects traffic that does not arrive through its session border proxy.
"""

from __future__ import annotations

import weakref

from repro.netsim.internet import InternetCloud, make_internet_host
from repro.netsim.node import Node
from repro.sip.auth import Credentials, DigestAuthenticator
from repro.sip.message import SipRequest
from repro.sip.proxy import ProxyCore, RoutingContext
from repro.sip.registrar import LocationService, Registrar
from repro.sip.ua import UserAgent
from repro.sip.uri import SipUri

#: Per-cloud registry of provider proxy addresses, for peer-trust checks.
_TRUSTED_BY_CLOUD: "weakref.WeakKeyDictionary[InternetCloud, set[str]]" = (
    weakref.WeakKeyDictionary()
)


def _trusted_peers(cloud: InternetCloud) -> set[str]:
    peers = _TRUSTED_BY_CLOUD.get(cloud)
    if peers is None:
        peers = set()
        _TRUSTED_BY_CLOUD[cloud] = peers
    return peers


class SipProvider:
    """A SIP service provider attached to the Internet cloud."""

    def __init__(
        self,
        cloud: InternetCloud,
        domain: str,
        requires_outbound_proxy: bool = False,
        auth_required: bool = False,
    ) -> None:
        self.cloud = cloud
        self.sim = cloud.sim
        self.domain = domain.lower()
        self.requires_outbound_proxy = requires_outbound_proxy
        self.auth: DigestAuthenticator | None = (
            DigestAuthenticator(realm=self.domain) if auth_required else None
        )
        self.host = make_internet_host(cloud.sim, cloud, hostname=self.domain)
        self.location = LocationService()
        self.registrar = Registrar(self.location)
        self.proxy = ProxyCore(self.host, port=5060)
        self.proxy.route_fn = self._route
        self.proxy.on_register = self._on_register
        cloud.dns.register(self.domain, self.host.wired_ip or "")
        _trusted_peers(cloud).add(self.host.wired_ip or "")
        self.sbc_host: Node | None = None
        self.sbc_proxy: ProxyCore | None = None
        if requires_outbound_proxy:
            self._start_sbc()
        self._users: list[UserAgent] = []

    @property
    def address(self) -> str:
        return self.host.wired_ip or ""

    @property
    def sbc_address(self) -> str | None:
        """The mandated outbound proxy address (None for plain providers)."""
        return self.sbc_host.wired_ip if self.sbc_host is not None else None

    def _start_sbc(self) -> None:
        self.sbc_host = make_internet_host(self.sim, self.cloud, hostname=f"sbc.{self.domain}")
        self.sbc_proxy = ProxyCore(self.sbc_host, port=5060)
        sbc_domain = f"sbc.{self.domain}"
        self.cloud.dns.register(sbc_domain, self.sbc_host.wired_ip or "")
        main_address = (self.address, 5060)

        def sbc_route(ctx: RoutingContext) -> None:
            ctx.forward(main_address)

        def sbc_register(ctx: RoutingContext) -> None:
            ctx.forward(main_address, record_route=False)

        self.sbc_proxy.route_fn = sbc_route
        self.sbc_proxy.on_register = sbc_register

    # -- policy ------------------------------------------------------------------
    def _source_allowed(self, ctx: RoutingContext) -> bool:
        if not self.requires_outbound_proxy:
            return True
        source_ip = ctx.source[0]
        if self.sbc_host is not None and source_ip == self.sbc_host.wired_ip:
            return True
        if source_ip in _trusted_peers(self.cloud):
            return True  # federation between providers is fine
        return False

    # -- request handling ------------------------------------------------------------
    def _on_register(self, ctx: RoutingContext) -> None:
        if not self._source_allowed(ctx):
            self.host.stats.increment("provider.rejected_direct_access")
            ctx.respond(403, "Use Provider Outbound Proxy")
            ctx.decided = True
            return
        if self.auth is not None and not self._authenticated(ctx.request):
            self._challenge(ctx)
            return
        self.registrar.process(ctx.request, ctx.txn, self.sim.now)
        ctx.decided = True

    def _authenticated(self, request: SipRequest) -> bool:
        assert self.auth is not None
        authorization = request.headers.get("Authorization")
        if authorization is None:
            return False
        return self.auth.verify(authorization, request.method, self.sim.now)

    def _challenge(self, ctx: RoutingContext) -> None:
        assert self.auth is not None
        self.host.stats.increment("provider.auth_challenges")
        response = ctx.request.create_response(401)
        response.headers.add("WWW-Authenticate", self.auth.challenge(self.sim.now))
        if ctx.txn is not None:
            ctx.txn.send_response(response)
        ctx.decided = True

    def add_subscriber(self, username: str, password: str) -> Credentials:
        """Provision authentication material for an account."""
        if self.auth is not None:
            self.auth.add_user(username, password)
        return Credentials(username=username, password=password)

    def _route(self, ctx: RoutingContext) -> None:
        if not self._source_allowed(ctx):
            self.host.stats.increment("provider.rejected_direct_access")
            ctx.respond(403, "Use Provider Outbound Proxy")
            return
        request = ctx.request
        target = request.uri
        if target.host == self.domain or target.host == self.address:
            self._route_local(ctx, request)
            return
        # Foreign domain: federate via DNS.
        peer_ip = self.cloud.dns.resolve(target.host)
        if peer_ip is None:
            ctx.respond(404, "Unknown Domain")
            return
        ctx.forward((peer_ip, 5060))

    def _route_local(self, ctx: RoutingContext, request: SipRequest) -> None:
        aor = SipUri(user=request.uri.user, host=self.domain).address_of_record
        contacts = self.location.lookup(aor, self.sim.now)
        if not contacts:
            ctx.respond(404)
            return
        contact = contacts[0]
        ctx.forward((contact.host, contact.effective_port()), uri=contact)

    # -- test users -------------------------------------------------------------------
    def create_softphone(self, username: str, **phone_kwargs):
        """Create an Internet-side subscriber running a full softphone
        (with RTP media), configured with this provider as outbound proxy."""
        from repro.core.config import SipAccount
        from repro.core.softphone import SoftPhone

        host = make_internet_host(
            self.sim, self.cloud, hostname=f"{username}.{self.domain}"
        )
        if self.requires_outbound_proxy and self.sbc_host is not None:
            outbound_host = self.sbc_host.wired_ip or ""
        else:
            outbound_host = self.address
        password = None
        if self.auth is not None:
            password = f"{username}-secret"
            self.add_subscriber(username, password)
        account = SipAccount(
            username=username,
            domain=self.domain,
            outbound_proxy=outbound_host,
            outbound_proxy_port=5060,
            password=password,
        )
        phone = SoftPhone(host, account, port=5060, **phone_kwargs)
        phone.start()
        return phone

    def create_user(self, username: str, auto_register: bool = True) -> UserAgent:
        """Create an Internet-side subscriber of this provider."""
        host = make_internet_host(self.sim, self.cloud, hostname=f"{username}.{self.domain}")
        if self.requires_outbound_proxy and self.sbc_host is not None:
            outbound = (self.sbc_host.wired_ip or "", 5060)
        else:
            outbound = (self.address, 5060)
        credentials = None
        if self.auth is not None:
            credentials = self.add_subscriber(username, f"{username}-secret")
        ua = UserAgent(
            host,
            aor=SipUri(user=username, host=self.domain),
            port=5060,
            outbound_proxy=outbound,
            credentials=credentials,
        )
        self._users.append(ua)
        if auto_register:
            ua.register()
        return ua
