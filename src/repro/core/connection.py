"""Connection Provider: keeps the node attached to the Internet when possible.

Periodically looks for a ``gateway.siphoc`` service via MANET SLP; when one
appears, opens a layer-2 tunnel to it. Monitors lease renewals and tears the
tunnel down (then resumes polling) if the gateway stops answering — e.g.
after the gateway node leaves the MANET. Components interested in
connectivity (the SIPHoc proxy's WAN leg) subscribe to the callbacks.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.core.manet_slp import ManetSlp
from repro.core.tunnel import TunnelClient
from repro.netsim.node import Node
from repro.slp.service import SERVICE_GATEWAY, ServiceEntry

ConnectivityCallback = Callable[[str], None]


def node_backoff_rng(node: Node, salt: int = 0) -> random.Random:
    """A private RNG for retry jitter, pinned by (scenario seed, node id).

    Separate from ``sim.rng`` on purpose: drawing jitter from the shared
    stream would perturb every later draw and break bit-identity of runs
    that never retry. Integer arithmetic only — no string hashing — so the
    seed is stable across interpreter processes.
    """
    return random.Random((node.sim.seed * 1_000_003 + node.node_id) * 127 + salt)


def backoff_with_jitter(
    base: float,
    consecutive_failures: int,
    max_backoff: float,
    rng: random.Random,
    jitter: float = 0.5,
) -> float:
    """Exponential backoff ``base * 2^(n-1)`` capped at ``max_backoff``,
    stretched by up to ``jitter`` fraction so synchronized clients that
    failed in lockstep (e.g. on one gateway crash) desynchronize."""
    delay = min(base * (2 ** (consecutive_failures - 1)), max_backoff)
    return delay * (1.0 + jitter * rng.random())


class ConnectionProvider:
    """Maintains this node's tunnel to whatever gateway is reachable."""

    POLL_INTERVAL = 5.0
    #: How long a gateway that failed on us is deprioritized in selection.
    GATEWAY_COOLDOWN = 30.0
    #: Upper bound on the consecutive-failure retry backoff.
    MAX_BACKOFF = 60.0

    def __init__(
        self,
        node: Node,
        manet_slp: ManetSlp,
        poll_interval: float = POLL_INTERVAL,
        gateway_cooldown: float = GATEWAY_COOLDOWN,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.manet_slp = manet_slp
        self.poll_interval = poll_interval
        self.gateway_cooldown = gateway_cooldown
        self.tunnel: TunnelClient | None = None
        self._poll_task = None
        self._connecting = False
        # Failed-gateway bookkeeping: gateway ip -> cooldown-until time, plus
        # exponential backoff across consecutive connect failures so a node
        # cut off from every gateway doesn't flood the MANET with lookups.
        self._failed: dict[str, float] = {}
        self._consecutive_failures = 0
        self._retry_at = 0.0
        self._backoff_rng = node_backoff_rng(node)
        self.on_connected: ConnectivityCallback | None = None
        self.on_disconnected: Callable[[], None] | None = None

    @property
    def connected(self) -> bool:
        return self.tunnel is not None and self.tunnel.connected

    @property
    def tunnel_ip(self) -> str | None:
        return self.tunnel.tunnel_ip if self.tunnel is not None else None

    def start(self) -> "ConnectionProvider":
        if self._poll_task is None:
            self._poll_task = self.sim.schedule_periodic(
                self.poll_interval, self._poll, jitter=0.2, initial_delay=0.5
            )
        return self

    def stop(self) -> None:
        if self._poll_task is not None:
            self._poll_task.stop()
            self._poll_task = None
        self._teardown()

    # -- polling --------------------------------------------------------------
    def _poll(self) -> None:
        if self._connecting:
            return
        if self.connected:
            self._check_liveness()
            return
        if self.node.wired_ip is not None:
            return  # we *are* the Internet attachment; no tunnel needed
        if self.sim.now < self._retry_at:
            return  # backing off after consecutive connect failures
        self.manet_slp.find_services(SERVICE_GATEWAY, callback=self._on_gateways)

    def _on_gateways(self, entries: list[ServiceEntry]) -> None:
        if self._poll_task is None:
            return  # stopped (or crashed) since the lookup was launched
        if self._connecting or self.connected or not entries:
            return
        now = self.sim.now
        self._failed = {
            ip: until for ip, until in self._failed.items() if until > now
        }
        # Prefer gateways that haven't recently failed on us; if every
        # candidate is cooling down, fall back to all of them rather than
        # staying offline (the cooldown is a preference, not a blacklist).
        usable = [e for e in entries if e.url.host not in self._failed]
        entry = min(usable or entries, key=self._gateway_metric)
        self._connecting = True
        tunnel = TunnelClient(self.node, entry.url.host)
        tunnel.on_disconnect = self._on_tunnel_down
        self.tunnel = tunnel
        tunnel.connect(self._on_connect_result)

    def _gateway_metric(self, entry: ServiceEntry) -> tuple[int, str]:
        """Prefer the closest gateway (known hop count), break ties by IP."""
        hops = None
        router = self.node.router
        if router is not None and hasattr(router, "hop_count_to"):
            hops = router.hop_count_to(entry.url.host)
        return (hops if hops is not None else 1_000, entry.url.host)

    def _on_connect_result(self, success: bool) -> None:
        self._connecting = False
        if not success:
            failed_ip = self.tunnel.gateway_ip if self.tunnel is not None else None
            self._note_gateway_failure(failed_ip)
            self._teardown()
            return
        assert self.tunnel is not None and self.tunnel.tunnel_ip is not None
        self._failed.pop(self.tunnel.gateway_ip, None)
        self._consecutive_failures = 0
        self._retry_at = 0.0
        self.node.stats.increment("connection.established")
        if self.on_connected is not None:
            self.on_connected(self.tunnel.tunnel_ip)

    def _check_liveness(self) -> None:
        assert self.tunnel is not None
        last_ack = self.tunnel.last_ack_at
        deadline = 2 * self.tunnel.RENEW_INTERVAL + 5.0
        if last_ack is not None and self.sim.now - last_ack > deadline:
            self.node.stats.increment("connection.gateway_lost")
            self._note_gateway_failure(self.tunnel.gateway_ip)
            self._teardown()

    def _note_gateway_failure(self, gateway_ip: str | None) -> None:
        """Cooldown the failed gateway; back off exponentially on repeats."""
        if gateway_ip is not None:
            self._failed[gateway_ip] = self.sim.now + self.gateway_cooldown
            self.node.stats.increment("connection.gateway_failures")
        self._consecutive_failures += 1
        backoff = backoff_with_jitter(
            self.poll_interval,
            self._consecutive_failures,
            self.MAX_BACKOFF,
            self._backoff_rng,
        )
        self._retry_at = self.sim.now + backoff

    def _on_tunnel_down(self) -> None:
        # Fires both from our own _teardown (self.tunnel already None) and
        # when the tunnel closes itself, e.g. on a gateway NACK for a lost
        # lease. In the latter case re-poll promptly — the gateway is alive
        # and answering, so a fresh lease is one REQUEST away.
        unsolicited = self.tunnel is not None
        self.tunnel = None
        if self.on_disconnected is not None:
            self.on_disconnected()
        if unsolicited and self._poll_task is not None:
            self.sim.schedule(0.0, self._poll)

    def _teardown(self) -> None:
        tunnel, self.tunnel = self.tunnel, None
        self._connecting = False
        if tunnel is not None and not tunnel.closed:
            tunnel.disconnect()
