"""Connection Provider: keeps the node attached to the Internet when possible.

Periodically looks for a ``gateway.siphoc`` service via MANET SLP; when one
appears, opens a layer-2 tunnel to it. Monitors lease renewals and tears the
tunnel down (then resumes polling) if the gateway stops answering — e.g.
after the gateway node leaves the MANET. Components interested in
connectivity (the SIPHoc proxy's WAN leg) subscribe to the callbacks.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

from repro.core.manet_slp import ManetSlp
from repro.core.tunnel import TunnelClient
from repro.netsim.node import Node
from repro.sip.ua import Call, CallState
from repro.sip.uri import SipUri
from repro.slp.service import SERVICE_GATEWAY, ServiceEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import HandoverConfig
    from repro.core.softphone import SoftPhone
    from repro.core.stack import SiphocStack

ConnectivityCallback = Callable[[str], None]


def node_backoff_rng(node: Node, salt: int = 0) -> random.Random:
    """A private RNG for retry jitter, pinned by (scenario seed, node id).

    Separate from ``sim.rng`` on purpose: drawing jitter from the shared
    stream would perturb every later draw and break bit-identity of runs
    that never retry. Integer arithmetic only — no string hashing — so the
    seed is stable across interpreter processes.
    """
    return random.Random((node.sim.seed * 1_000_003 + node.node_id) * 127 + salt)


def backoff_with_jitter(
    base: float,
    consecutive_failures: int,
    max_backoff: float,
    rng: random.Random,
    jitter: float = 0.5,
) -> float:
    """Exponential backoff ``base * 2^(n-1)`` capped at ``max_backoff``,
    stretched by up to ``jitter`` fraction so synchronized clients that
    failed in lockstep (e.g. on one gateway crash) desynchronize."""
    delay = min(base * (2 ** (consecutive_failures - 1)), max_backoff)
    return delay * (1.0 + jitter * rng.random())


class ConnectionProvider:
    """Maintains this node's tunnel to whatever gateway is reachable."""

    POLL_INTERVAL = 5.0
    #: How long a gateway that failed on us is deprioritized in selection.
    GATEWAY_COOLDOWN = 30.0
    #: Upper bound on the consecutive-failure retry backoff.
    MAX_BACKOFF = 60.0

    def __init__(
        self,
        node: Node,
        manet_slp: ManetSlp,
        poll_interval: float = POLL_INTERVAL,
        gateway_cooldown: float = GATEWAY_COOLDOWN,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.manet_slp = manet_slp
        self.poll_interval = poll_interval
        self.gateway_cooldown = gateway_cooldown
        self.tunnel: TunnelClient | None = None
        self._poll_task = None
        self._connecting = False
        # Failed-gateway bookkeeping: gateway ip -> cooldown-until time, plus
        # exponential backoff across consecutive connect failures so a node
        # cut off from every gateway doesn't flood the MANET with lookups.
        self._failed: dict[str, float] = {}
        self._consecutive_failures = 0
        self._retry_at = 0.0
        self._backoff_rng = node_backoff_rng(node)
        self.on_connected: ConnectivityCallback | None = None
        self.on_disconnected: Callable[[], None] | None = None

    @property
    def connected(self) -> bool:
        return self.tunnel is not None and self.tunnel.connected

    @property
    def tunnel_ip(self) -> str | None:
        return self.tunnel.tunnel_ip if self.tunnel is not None else None

    def start(self) -> "ConnectionProvider":
        if self._poll_task is None:
            self._poll_task = self.sim.schedule_periodic(
                self.poll_interval, self._poll, jitter=0.2, initial_delay=0.5
            )
        return self

    def stop(self) -> None:
        if self._poll_task is not None:
            self._poll_task.stop()
            self._poll_task = None
        self._teardown()

    # -- polling --------------------------------------------------------------
    def _prune_failed(self) -> None:
        """Drop expired cooldown entries on every lookup.

        Without this the map only shrank inside ``_on_gateways`` — which
        never runs while connected or while lookups come back empty — so
        expired entries accumulated for the life of a long run.
        """
        if not self._failed:
            return
        now = self.sim.now
        self._failed = {
            ip: until for ip, until in self._failed.items() if until > now
        }

    def _poll(self) -> None:
        self._prune_failed()
        if self._connecting:
            return
        if self.connected:
            self._check_liveness()
            return
        if self.node.wired_ip is not None:
            return  # we *are* the Internet attachment; no tunnel needed
        if self.sim.now < self._retry_at:
            return  # backing off after consecutive connect failures
        self.manet_slp.find_services(SERVICE_GATEWAY, callback=self._on_gateways)

    def _on_gateways(self, entries: list[ServiceEntry]) -> None:
        if self._poll_task is None:
            return  # stopped (or crashed) since the lookup was launched
        if self._connecting or self.connected or not entries:
            return
        self._prune_failed()
        # Prefer gateways that haven't recently failed on us; if every
        # candidate is cooling down, fall back to all of them rather than
        # staying offline (the cooldown is a preference, not a blacklist).
        usable = [e for e in entries if e.url.host not in self._failed]
        entry = min(usable or entries, key=self._gateway_metric)
        self._connecting = True
        tunnel = TunnelClient(self.node, entry.url.host)
        tunnel.on_disconnect = self._on_tunnel_down
        self.tunnel = tunnel
        tunnel.connect(self._on_connect_result)

    def _gateway_metric(self, entry: ServiceEntry) -> tuple[int, str]:
        """Prefer the closest gateway (known hop count), break ties by IP."""
        hops = None
        router = self.node.router
        if router is not None and hasattr(router, "hop_count_to"):
            hops = router.hop_count_to(entry.url.host)
        return (hops if hops is not None else 1_000, entry.url.host)

    def _on_connect_result(self, success: bool) -> None:
        self._connecting = False
        if not success:
            failed_ip = self.tunnel.gateway_ip if self.tunnel is not None else None
            self._note_gateway_failure(failed_ip)
            self._teardown()
            return
        assert self.tunnel is not None and self.tunnel.tunnel_ip is not None
        self._failed.pop(self.tunnel.gateway_ip, None)
        self._consecutive_failures = 0
        self._retry_at = 0.0
        self.node.stats.increment("connection.established")
        if self.on_connected is not None:
            self.on_connected(self.tunnel.tunnel_ip)

    def _check_liveness(self) -> None:
        assert self.tunnel is not None
        last_ack = self.tunnel.last_ack_at
        deadline = 2 * self.tunnel.RENEW_INTERVAL + 5.0
        if last_ack is not None and self.sim.now - last_ack > deadline:
            self.node.stats.increment("connection.gateway_lost")
            self._note_gateway_failure(self.tunnel.gateway_ip)
            self._teardown()

    def _note_gateway_failure(self, gateway_ip: str | None) -> None:
        """Cooldown the failed gateway; back off exponentially on repeats."""
        if gateway_ip is not None:
            self._failed[gateway_ip] = self.sim.now + self.gateway_cooldown
            self.node.stats.increment("connection.gateway_failures")
        self._consecutive_failures += 1
        backoff = backoff_with_jitter(
            self.poll_interval,
            self._consecutive_failures,
            self.MAX_BACKOFF,
            self._backoff_rng,
        )
        self._retry_at = self.sim.now + backoff

    def _on_tunnel_down(self) -> None:
        # Fires both from our own _teardown (self.tunnel already None) and
        # when the tunnel closes itself, e.g. on a gateway NACK for a lost
        # lease. In the latter case re-poll promptly — the gateway is alive
        # and answering, so a fresh lease is one REQUEST away.
        unsolicited = self.tunnel is not None
        self.tunnel = None
        if self.on_disconnected is not None:
            self.on_disconnected()
        if unsolicited and self._poll_task is not None:
            self.sim.schedule(0.0, self._poll)

    def _teardown(self) -> None:
        tunnel, self.tunnel = self.tunnel, None
        self._connecting = False
        if tunnel is not None and not tunnel.closed:
            tunnel.disconnect()


class _HandoverAttempt:
    """Book-keeping for one call currently being migrated."""

    __slots__ = (
        "phone", "call", "cause", "mode", "started_at", "last_rx_before",
        "attempts", "seq", "resolved", "completed_at",
    )

    def __init__(
        self,
        phone: "SoftPhone",
        call: Call,
        cause: str,
        mode: str,
        started_at: float,
        last_rx_before: float,
    ) -> None:
        self.phone = phone
        self.call = call
        self.cause = cause
        self.mode = mode
        self.started_at = started_at
        self.last_rx_before = last_rx_before
        self.attempts = 0
        self.seq = 0
        self.resolved = False
        self.completed_at: float | None = None


class HandoverPolicy:
    """Mid-call multihomed handover: move live calls off a dying radio (§5k).

    Layered on the same failure machinery as the gateway failover above:
    the private integer-seeded RNG for retry jitter, exponential backoff
    with a ceiling, and explicit give-up instead of wedging. Three triggers
    decide that the MANET path is gone:

    * ``interface_down`` — the radio was administratively disabled (fault
      injection, driver death); fires synchronously from the interface
      observer hook.
    * ``neighbor_loss`` — the wireless neighbor set has been empty for a
      full hysteresis window (the node drifted past the mesh horizon).
    * ``rtp_silence`` — an established call stopped receiving media for
      ``rtp_silence_timeout`` (covers asymmetric failures the first two
      miss).

    Migration is make-before-break when the wired uplink is already up,
    break-before-make otherwise (the policy raises the uplink first). Each
    attempt is a handover re-INVITE (:meth:`repro.sip.ua.Call.migrate`)
    re-anchoring signaling and media to the wired address while the RTP
    session object — SSRC, sequence space, jitter buffer, E-model
    accounting — survives untouched. Attempts that get no answer within
    ``attempt_timeout`` retry with jittered backoff until ``giveup_after``,
    then the call is torn down cleanly with a BYE.
    """

    def __init__(self, node: Node, stack: "SiphocStack", config: "HandoverConfig") -> None:
        self.node = node
        self.stack = stack
        self.sim = node.sim
        self.config = config
        self._probe_task = None
        self._observing = False
        self._active: dict[str, _HandoverAttempt] = {}
        self._migrated: set[str] = set()
        self._abandoned: set[str] = set()
        self._last_neighbor_at = self.sim.now
        self._rng = node_backoff_rng(node, salt=5)
        self.attempted = 0
        self.succeeded = 0
        self.abandoned = 0
        #: Seconds from trigger to confirmed re-INVITE, per success.
        self.latencies: list[float] = []
        #: Seconds of inbound-media gap spanning each survived outage.
        self.media_gaps: list[float] = []

    @property
    def active_attempts(self) -> int:
        return len(self._active)

    def start(self) -> "HandoverPolicy":
        if self._probe_task is None:
            self._probe_task = self.sim.schedule_periodic(
                self.config.probe_interval, self._probe
            )
        if not self._observing:
            self.node.on_interface_change.append(self._on_interface_change)
            self._observing = True
        self._last_neighbor_at = self.sim.now
        for phone in self.stack.phones:
            self.adopt_phone(phone)
        return self

    def stop(self) -> None:
        if self._probe_task is not None:
            self._probe_task.stop()
            self._probe_task = None
        if self._observing:
            try:
                self.node.on_interface_change.remove(self._on_interface_change)
            except ValueError:
                pass
            self._observing = False
        self._active.clear()

    def adopt_phone(self, phone: "SoftPhone") -> None:
        """Advertise the phone's multihomed fallback contact, if any."""
        if self.node.wired_ip is not None:
            ua = phone.ua
            ua.alt_contact_uri = SipUri(
                user=ua.aor.user, host=self.node.wired_ip, port=ua.transport.port
            )

    # -- triggers -------------------------------------------------------------
    def _on_interface_change(self, name: str, up: bool) -> None:
        if name != "wireless":
            return
        if up:
            self._last_neighbor_at = self.sim.now
        else:
            self._trigger("interface_down")

    def _probe(self) -> None:
        now = self.sim.now
        config = self.config
        medium = self.node.medium
        if medium is not None and self.node.interface_up("wireless"):
            neighbors = [n for n in medium.neighbors(self.node) if n.up]
            if neighbors:
                self._last_neighbor_at = now
            elif now - self._last_neighbor_at >= config.neighbor_loss_window:
                self._trigger("neighbor_loss")
        for phone, call in self._candidate_calls():
            session = phone.media_session(call.call_id)
            if session is None:
                continue
            last = session.last_rx_at
            if last is None:
                last = call.established_at
            if last is not None and now - last >= config.rtp_silence_timeout:
                self._begin(phone, call, "rtp_silence")

    def _candidate_calls(self) -> list[tuple["SoftPhone", Call]]:
        out = []
        for phone in self.stack.phones:
            for call in phone.ua.active_calls:
                if (
                    call.state is CallState.ESTABLISHED
                    and call.call_id not in self._active
                    and call.call_id not in self._migrated
                    and call.call_id not in self._abandoned
                ):
                    out.append((phone, call))
        return out

    def _trigger(self, cause: str) -> None:
        for phone, call in self._candidate_calls():
            self._begin(phone, call, cause)

    # -- migration ------------------------------------------------------------
    def _begin(self, phone: "SoftPhone", call: Call, cause: str) -> None:
        now = self.sim.now
        wired = self.node.interfaces.get("wired")
        mode = (
            "make-before-break"
            if wired is not None and wired.up
            else "break-before-make"
        )
        self.attempted += 1
        self.node.stats.increment("handover.attempted")
        self._emit("handover.trigger", call_id=call.call_id, cause=cause, mode=mode)
        session = phone.media_session(call.call_id)
        last_rx = session.last_rx_at if session is not None else None
        if last_rx is None:
            last_rx = call.established_at if call.established_at is not None else now
        attempt = _HandoverAttempt(phone, call, cause, mode, now, last_rx)
        self._active[call.call_id] = attempt
        if self.node.wired_ip is None:
            self._abandon(attempt, "no_uplink")
            return
        if wired is not None and not wired.up:
            # Break-before-make: raise the second interface now.
            self.node.set_interface_up("wired", True)
        self._attempt(attempt)

    def _attempt(self, attempt: _HandoverAttempt) -> None:
        if attempt.call.call_id not in self._active:
            return
        if not attempt.call.is_active:
            self._active.pop(attempt.call.call_id, None)
            return
        if self.sim.now - attempt.started_at >= self.config.giveup_after:
            self._abandon(attempt, "deadline")
            return
        attempt.attempts += 1
        attempt.seq += 1
        attempt.resolved = False
        seq = attempt.seq
        self._emit(
            "handover.attempt",
            call_id=attempt.call.call_id,
            attempt=attempt.attempts,
        )

        def on_result(success: bool) -> None:
            if attempt.seq != seq or attempt.resolved:
                return  # a newer attempt superseded this one
            attempt.resolved = True
            if success:
                self._complete(attempt)
            else:
                self._retry(attempt)

        attempt.phone.migrate_call(attempt.call, on_result)
        self.sim.schedule(self.config.attempt_timeout, self._attempt_deadline, attempt, seq)

    def _attempt_deadline(self, attempt: _HandoverAttempt, seq: int) -> None:
        """A migration re-INVITE with no answer counts as a failed attempt.

        The SIP client transaction would wait Timer F (32 s) before
        reporting a timeout — far past any useful give-up deadline — so
        the policy enforces its own, and ignores the stale transaction
        callback when it eventually fires.
        """
        if attempt.seq != seq or attempt.resolved:
            return
        if attempt.call.call_id not in self._active:
            return
        attempt.resolved = True
        self._retry(attempt)

    def _retry(self, attempt: _HandoverAttempt) -> None:
        if attempt.call.call_id not in self._active:
            return
        if not attempt.call.is_active:
            self._active.pop(attempt.call.call_id, None)
            return
        if self.sim.now - attempt.started_at >= self.config.giveup_after:
            self._abandon(attempt, "deadline")
            return
        delay = backoff_with_jitter(
            self.config.retry_base, attempt.attempts, self.config.max_backoff, self._rng
        )
        self.sim.schedule(delay, self._attempt, attempt)

    def _complete(self, attempt: _HandoverAttempt) -> None:
        now = self.sim.now
        latency = now - attempt.started_at
        attempt.completed_at = now
        self.succeeded += 1
        self.latencies.append(latency)
        self.node.stats.increment("handover.succeeded")
        self._migrated.add(attempt.call.call_id)
        self._active.pop(attempt.call.call_id, None)
        self._emit(
            "handover.complete",
            call_id=attempt.call.call_id,
            latency_ms=round(latency * 1000, 3),
            attempts=attempt.attempts,
            mode=attempt.mode,
            cause=attempt.cause,
        )
        self._watch_media(attempt)

    def _watch_media(self, attempt: _HandoverAttempt) -> None:
        """Measure the media gap: inbound silence spanning the outage."""
        session = attempt.phone.media_session(attempt.call.call_id)
        completed_at = attempt.completed_at
        if completed_at is None:
            return
        if (
            session is not None
            and session.last_rx_at is not None
            and session.last_rx_at > completed_at
        ):
            gap = session.last_rx_at - attempt.last_rx_before
            frame = getattr(session.codec, "frame_interval", 0.02) or 0.02
            packets_lost = max(0, int(round(gap / frame)) - 1)
            self.media_gaps.append(gap)
            self.node.stats.increment("handover.media_restored")
            self._emit(
                "handover.media_restored",
                call_id=attempt.call.call_id,
                gap_ms=round(gap * 1000, 3),
                packets_lost=packets_lost,
            )
            return
        if self.sim.now - completed_at >= self.config.media_watch_window:
            return
        if not attempt.call.is_active:
            return
        self.sim.schedule(self.config.probe_interval, self._watch_media, attempt)

    def _abandon(self, attempt: _HandoverAttempt, cause: str) -> None:
        self.abandoned += 1
        self.node.stats.increment("handover.abandoned")
        self._abandoned.add(attempt.call.call_id)
        self._active.pop(attempt.call.call_id, None)
        self._emit(
            "handover.abandoned",
            call_id=attempt.call.call_id,
            cause=cause,
            attempts=attempt.attempts,
        )
        # Tear the call down cleanly instead of wedging: the BYE may well
        # time out over the dead path, and transaction Timer F then moves
        # the call to TERMINATED — media stops, records are finalized.
        if attempt.call.is_active:
            attempt.call.hangup()

    def _emit(self, kind: str, **detail) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(kind, self.node.ip or self.node.wired_ip or "", **detail)
