"""SIPHoc: the paper's contribution — SIP middleware for ad hoc networks.

The five components of Figure 1: the VoIP application (:class:`SoftPhone`),
the SIPHoc :class:`SiphocProxy`, :class:`ManetSlp` with its routing handler
plugins, the :class:`GatewayProvider` and the :class:`ConnectionProvider`
— plus :class:`SiphocStack`, which wires them all up on a node.
"""

from repro.core.config import SipAccount, SiphocConfig
from repro.core.connection import ConnectionProvider
from repro.core.extension import (
    EXT_SLP_ADVERT,
    EXT_SLP_QUERY,
    EXT_SLP_REPLY,
    advert_extension,
    decode_extension,
    is_slp_extension,
    query_extension,
    reply_extension,
)
from repro.core.gateway import GatewayProvider
from repro.core.handlers import AodvHandler, OlsrHandler, RoutingHandler, make_handler
from repro.core.manet_slp import ManetSlp, ManetSlpConfig
from repro.core.media_relay import MediaRelay, RelaySession
from repro.core.provider import SipProvider
from repro.core.proxy import SiphocProxy
from repro.core.softphone import (
    AnswerMode,
    CallRecord,
    SoftPhone,
    TextMessage,
    VideoStats,
)
from repro.core.stack import SiphocStack, make_routing
from repro.core.tunnel import (
    TunnelClient,
    TunnelLease,
    TunnelServer,
    decode_inner_packet,
    encode_inner_packet,
)

__all__ = [
    "AnswerMode",
    "AodvHandler",
    "CallRecord",
    "ConnectionProvider",
    "EXT_SLP_ADVERT",
    "EXT_SLP_QUERY",
    "EXT_SLP_REPLY",
    "GatewayProvider",
    "ManetSlp",
    "ManetSlpConfig",
    "MediaRelay",
    "OlsrHandler",
    "RelaySession",
    "RoutingHandler",
    "SipAccount",
    "SipProvider",
    "SiphocConfig",
    "SiphocProxy",
    "SiphocStack",
    "SoftPhone",
    "TextMessage",
    "TunnelClient",
    "TunnelLease",
    "TunnelServer",
    "VideoStats",
    "advert_extension",
    "decode_extension",
    "decode_inner_packet",
    "encode_inner_packet",
    "is_slp_extension",
    "make_handler",
    "make_routing",
    "query_extension",
    "reply_extension",
]
