"""MANET SLP: fully distributed service location via routing piggybacking.

This is the component Figure 4 of the paper shows: it exposes a regular
SLP-style interface (register / deregister / find_services) but never sends
a dedicated control packet of its own — all dissemination and lookup
traffic rides on routing messages, which a protocol-specific
:mod:`routing handler plugin <repro.core.handlers>` attaches via the
node's netfilter hook chain.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.netsim.node import Node
from repro.slp.messages import SrvRqst
from repro.slp.service import ServiceEntry, ServiceUrl

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.handlers import RoutingHandler

LookupCallback = Callable[[list[ServiceEntry]], None]


@dataclass
class ManetSlpConfig:
    """Tunable knobs (each is an ablation axis in the benchmarks)."""

    advert_lifetime: float = 120.0
    #: Re-announce local registrations this often (proactive refresh).
    refresh_interval: float = 30.0
    #: How many outgoing routing packets each queued advert may ride on.
    advert_redundancy: int = 2
    #: Max piggybacked SLP extensions per routing packet.
    piggyback_budget: int = 3
    #: Network lookup timeout.
    lookup_timeout: float = 2.0
    #: Resolve a pending lookup as soon as the first match arrives.
    resolve_on_first: bool = True
    #: Minimum spacing between *re*-advertisements of the same service (§5f).
    #: Under registration churn (e.g. a flapping client re-REGISTERing) this
    #: keeps the piggyback channel from being monopolized by one entry.
    #: 0.0 = off (legacy behavior); first registrations always advertise.
    min_readvertise_interval: float = 0.0


@dataclass
class _PendingLookup:
    xid: int
    service_type: str
    predicate: str
    callback: LookupCallback
    started_at: float = 0.0
    results: dict[str, ServiceEntry] = field(default_factory=dict)
    done: bool = False


class ManetSlp:
    """Distributed SLP engine; one instance per node."""

    def __init__(
        self,
        node: Node,
        handler: "RoutingHandler",
        config: ManetSlpConfig | None = None,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.config = config or ManetSlpConfig()
        self.handler = handler
        self._local: dict[str, ServiceEntry] = {}
        self._cache: dict[str, ServiceEntry] = {}
        # key -> sim time of the last advert actually handed to the handler
        # (the rate limiter's memory; entries leave with their registration).
        self._last_advertised: dict[str, float] = {}
        self._pending: dict[int, _PendingLookup] = {}
        self._xid = itertools.count(1)
        self._refresh_task = None
        handler.attach(self)

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "ManetSlp":
        if self._refresh_task is None and self.config.refresh_interval > 0:
            self._refresh_task = self.sim.schedule_periodic(
                self.config.refresh_interval, self._refresh_local, jitter=0.1
            )
        return self

    def stop(self) -> None:
        if self._refresh_task is not None:
            self._refresh_task.stop()
            self._refresh_task = None
        # Pending lookups die with the component: their already-scheduled
        # timeout events must not fire callbacks into stopped (or rebuilt)
        # components — e.g. resurrecting a tunnel on a crashed node.
        for pending in self._pending.values():
            pending.done = True
        self._pending.clear()

    # -- SLP-facing API ----------------------------------------------------------
    def register(
        self,
        url: ServiceUrl | str,
        attributes: dict[str, str] | None = None,
        lifetime: float | None = None,
    ) -> ServiceEntry:
        """Register a local service and queue it for piggyback dissemination."""
        parsed = ServiceUrl.parse(url) if isinstance(url, str) else url
        life = lifetime if lifetime is not None else self.config.advert_lifetime
        entry = ServiceEntry(
            url=parsed,
            attributes=dict(attributes or {}),
            lifetime=life,
            expires_at=self.sim.now + life,
            origin=self.node.ip,
        )
        key = entry.key()
        rearming = key in self._local
        self._local[key] = entry
        self.node.stats.increment("manetslp.registrations")
        if rearming and self._suppress_readvertise(key):
            return entry
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "slp.advertise", self.node.ip, url=str(entry.url), lifetime=life,
            )
        self._last_advertised[key] = self.sim.now
        self.handler.advertise(entry)
        return entry

    def deregister(self, url: ServiceUrl | str) -> None:
        key = str(ServiceUrl.parse(url) if isinstance(url, str) else url)
        entry = self._local.pop(key, None)
        self._last_advertised.pop(key, None)
        if entry is not None:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit("slp.withdraw", self.node.ip, url=key)
            self.handler.withdraw(entry)

    def forget_local(self, url: ServiceUrl | str | None) -> None:
        """Drop a local registration *without* announcing a withdrawal.

        Crash semantics: a dead service cannot say goodbye, so remote
        caches keep the stale entry until its lifetime expires. Used by
        fault injection (e.g. an abrupt gateway failure).
        """
        if url is None:
            return
        key = str(ServiceUrl.parse(url) if isinstance(url, str) else url)
        self._local.pop(key, None)
        self._last_advertised.pop(key, None)

    def find_services(
        self,
        service_type: str,
        predicate: str = "",
        callback: LookupCallback | None = None,
        timeout: float | None = None,
    ) -> int:
        """Resolve services of ``service_type`` matching ``predicate``.

        Local registrations and fresh cache entries answer immediately (the
        callback still fires asynchronously, on the next event). On a cache
        miss the routing handler launches an in-band network query.
        Returns the lookup transaction id.
        """
        xid = next(self._xid)
        cb = callback or (lambda entries: None)
        tracer = self.sim.tracer
        hits = self.lookup_cached(service_type, predicate)
        if hits:
            self.node.stats.increment("manetslp.cache_hits")
            if tracer is not None:
                tracer.emit(
                    "slp.cache_hit", self.node.ip, service_type=service_type,
                    xid=xid, results=len(hits),
                )
            self.sim.schedule(0.0, cb, hits)
            return xid
        self.node.stats.increment("manetslp.cache_misses")
        if tracer is not None:
            tracer.emit(
                "slp.query", self.node.ip, service_type=service_type,
                predicate=predicate, xid=xid,
            )
        pending = _PendingLookup(
            xid=xid,
            service_type=service_type,
            predicate=predicate,
            callback=cb,
            started_at=self.sim.now,
        )
        self._pending[xid] = pending
        request = SrvRqst(
            xid=xid,
            service_type=service_type,
            predicate=predicate,
            requester=self.node.ip,
        )
        self.handler.query(request)
        self.sim.schedule(
            timeout if timeout is not None else self.config.lookup_timeout,
            self._finish_lookup,
            xid,
        )
        return xid

    def lookup_cached(self, service_type: str, predicate: str = "") -> list[ServiceEntry]:
        """Synchronous lookup against local registrations + remote cache."""
        now = self.sim.now
        seen: dict[str, ServiceEntry] = {}
        for entry in itertools.chain(self._local.values(), self._cache.values()):
            if entry.is_valid(now) and entry.matches(service_type, predicate):
                seen.setdefault(entry.key(), entry)
        return list(seen.values())

    # -- introspection (Figure 4's state dump) --------------------------------------
    def local_services(self) -> list[ServiceEntry]:
        now = self.sim.now
        return [entry for entry in self._local.values() if entry.is_valid(now)]

    def cached_services(self) -> list[ServiceEntry]:
        now = self.sim.now
        return [entry for entry in self._cache.values() if entry.is_valid(now)]

    @property
    def cache_size(self) -> int:
        """Remote entries held, including not-yet-expired ones (metrics gauge)."""
        return len(self._cache)

    @property
    def local_service_count(self) -> int:
        """Locally registered services (metrics gauge)."""
        return len(self._local)

    def state_dump(self) -> str:
        """Human-readable process state, in the spirit of Figure 4."""
        lines = [
            f"MANET SLP on {self.node.hostname} ({self.node.ip})",
            f"routing handler plugin: {self.handler.protocol_name}",
            "local registrations:",
        ]
        for entry in self.local_services():
            lines.append(f"  {entry.url}  {entry.attributes}  ttl={entry.lifetime:.0f}s")
        lines.append("remote cache:")
        for entry in self.cached_services():
            remaining = entry.expires_at - self.sim.now
            lines.append(
                f"  {entry.url}  {entry.attributes}  from={entry.origin}"
                f"  expires_in={remaining:.0f}s"
            )
        return "\n".join(lines)

    # -- handler-facing API ------------------------------------------------------------
    def local_matches(self, service_type: str, predicate: str) -> list[ServiceEntry]:
        """Local registrations matching a remote query (never cache, so stale
        third-party data is not re-authoritatively served)."""
        now = self.sim.now
        return [
            entry
            for entry in self._local.values()
            if entry.is_valid(now) and entry.matches(service_type, predicate)
        ]

    def on_remote_entry(self, entry: ServiceEntry) -> None:
        """A piggybacked advert or reply arrived: update cache, feed lookups."""
        if entry.origin == self.node.ip or entry.key() in self._local:
            return
        if entry.lifetime <= 0:
            self._cache.pop(entry.key(), None)
            return
        existing = self._cache.get(entry.key())
        if existing is None or entry.expires_at >= existing.expires_at:
            self._cache[entry.key()] = entry
        self.node.stats.increment("manetslp.entries_learned")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit(
                "slp.entry_learned", self.node.ip, url=entry.key(),
                origin=entry.origin,
            )
        for pending in list(self._pending.values()):
            if pending.done:
                continue
            if entry.matches(pending.service_type, pending.predicate):
                pending.results[entry.key()] = entry
                if self.config.resolve_on_first:
                    self._finish_lookup(pending.xid)

    def on_remote_removal(self, url: str) -> None:
        self._cache.pop(url, None)

    def _finish_lookup(self, xid: int) -> None:
        pending = self._pending.pop(xid, None)
        if pending is None or pending.done:
            return
        pending.done = True
        results = list(pending.results.values())
        if not results:
            # Last chance: something may have entered the cache meanwhile.
            results = self.lookup_cached(pending.service_type, pending.predicate)
        tracer = self.sim.tracer
        if results:
            self.node.stats.increment("manetslp.lookups_resolved")
            self.node.stats.sample(
                "manetslp.lookup_latency", self.sim.now - pending.started_at
            )
            if tracer is not None:
                tracer.emit(
                    "slp.resolved", self.node.ip, xid=xid,
                    service_type=pending.service_type, results=len(results),
                    latency=self.sim.now - pending.started_at,
                )
        else:
            self.node.stats.increment("manetslp.lookups_failed")
            if tracer is not None:
                tracer.emit(
                    "slp.miss", self.node.ip, xid=xid,
                    service_type=pending.service_type,
                )
        pending.callback(results)

    def _suppress_readvertise(self, key: str) -> bool:
        """Rate limiter: withhold a re-advert sent too soon after the last.

        Local state (entry contents, expiry) is always updated by the
        caller; only the network-facing ``handler.advertise`` is withheld.
        """
        interval = self.config.min_readvertise_interval
        if interval <= 0:
            return False
        last = self._last_advertised.get(key)
        if last is None or self.sim.now - last >= interval:
            return False
        self.node.stats.increment("manetslp.adverts_suppressed")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("slp.advert_suppressed", self.node.ip, url=key)
        return True

    def _refresh_local(self) -> None:
        now = self.sim.now
        for entry in list(self._local.values()):
            entry.expires_at = now + entry.lifetime
            key = entry.key()
            if self._suppress_readvertise(key):
                continue
            self._last_advertised[key] = now
            self.handler.advertise(entry)
