"""Layer-2 tunnel between MANET nodes and Internet gateways.

The Gateway Provider runs a :class:`TunnelServer`; the Connection Provider
on every other node opens a :class:`TunnelClient` to it. The client gains
an Internet-routable address on a virtual interface plus a default route,
so *any* application traffic to the Internet is transparently encapsulated
over the MANET to the gateway, which forwards it into the Internet cloud —
and vice versa. This is what makes a node "automatically attached to the
Internet" in the paper's words.

Control protocol (UDP :data:`PORT_SIPHOC_CTRL`): REQUEST -> ACK(lease) or
NAK; RELEASE. Data plane (UDP :data:`PORT_SIPHOC_TUNNEL`): encapsulated IP
packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import CodecError, GatewayError, PortInUseError
from repro.netsim.internet import InternetCloud
from repro.netsim.node import Node
from repro.netsim.packet import (
    Datagram,
    PORT_SIPHOC_CTRL,
    PORT_SIPHOC_TUNNEL,
    Packet,
    is_manet_address,
)
from repro.routing.wire import Reader, Writer

CTRL_REQUEST = 1
CTRL_ACK = 2
CTRL_NAK = 3
CTRL_RELEASE = 4


def encode_inner_packet(packet: Packet) -> bytes:
    """Serialize an IP packet for tunnel encapsulation."""
    writer = Writer()
    writer.ip(packet.src).ip(packet.dst).u8(max(0, min(255, packet.ttl)))
    writer.u16(packet.sport).u16(packet.dport)
    writer.u16(len(packet.data)).raw(packet.data)
    return writer.getvalue()


def decode_inner_packet(data: bytes) -> Packet:
    reader = Reader(data)
    src = reader.ip()
    dst = reader.ip()
    ttl = reader.u8()
    sport = reader.u16()
    dport = reader.u16()
    length = reader.u16()
    payload = reader.raw(length)
    return Packet(src=src, dst=dst, ttl=ttl, payload=Datagram(sport, dport, payload))


def _encode_ctrl(msg_type: int, address: str = "0.0.0.0", lease: int = 0) -> bytes:
    writer = Writer()
    writer.u8(msg_type).ip(address).u16(lease)
    return writer.getvalue()


def _decode_ctrl(data: bytes) -> tuple[int, str, int]:
    reader = Reader(data)
    return (reader.u8(), reader.ip(), reader.u16())


@dataclass
class TunnelLease:
    client_manet_ip: str
    tunnel_ip: str
    expires_at: float

    def is_active(self, now: float) -> bool:
        """A lease is dead *at* its expiry instant: active iff now < expires_at.

        Every lease-validity comparison goes through here so the boundary
        is decided once (``active_leases``, ``_expire_leases`` and the
        upstream data path can never disagree about an expiring lease).
        """
        return now < self.expires_at


class TunnelServer:
    """Gateway-side tunnel endpoint: allocates leases, relays both ways."""

    LEASE_TIME = 60.0
    #: Retry-later hint (seconds) carried in the NAK's lease field when a
    #: request is refused for capacity, not for an unknown lease.
    CAPACITY_RETRY_AFTER = 10

    def __init__(
        self, node: Node, cloud: InternetCloud, max_leases: int | None = None
    ) -> None:
        if node.wired_ip is None:
            raise GatewayError("tunnel server requires a wired (Internet) interface")
        self.node = node
        self.sim = node.sim
        self.cloud = cloud
        #: Lease-capacity limit (§5f); None = unlimited, the legacy behavior.
        self.max_leases = max_leases
        self._ctrl_socket = node.bind(PORT_SIPHOC_CTRL, self._on_ctrl)
        self._data_socket = node.bind(PORT_SIPHOC_TUNNEL, self._on_upstream)
        self._leases: dict[str, TunnelLease] = {}  # client manet ip -> lease
        self._by_tunnel_ip: dict[str, TunnelLease] = {}
        self._gc_task = node.sim.schedule_periodic(10.0, self._expire_leases)
        self.closed = False

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._gc_task.stop()
        for lease in list(self._leases.values()):
            self._drop_lease(lease)
        self._ctrl_socket.close()
        self._data_socket.close()

    @property
    def active_leases(self) -> list[TunnelLease]:
        now = self.sim.now
        return [lease for lease in self._leases.values() if lease.is_active(now)]

    @property
    def active_lease_count(self) -> int:
        """Number of currently active leases (metrics gauge; no mutation)."""
        now = self.sim.now
        return sum(1 for lease in self._leases.values() if lease.is_active(now))

    # -- control plane ----------------------------------------------------------
    def _on_ctrl(self, data: bytes, src_ip: str, sport: int) -> None:
        if self.closed:
            return
        try:
            msg_type, _, _ = _decode_ctrl(data)
        except CodecError:
            return
        if msg_type == CTRL_REQUEST:
            tracer = self.sim.tracer
            lease = self._leases.get(src_ip)
            if lease is None and self._at_capacity():
                # NACK-and-retry-later: renewals of existing leases above
                # always pass, so capacity pressure never evicts a client
                # that is already attached.
                self.node.stats.increment("tunnel.leases_rejected")
                if tracer is not None:
                    tracer.emit(
                        "tunnel.nack", self.node.ip, client=src_ip,
                        cause="capacity", retry_after=self.CAPACITY_RETRY_AFTER,
                    )
                self._ctrl_socket.send(
                    src_ip,
                    sport,
                    _encode_ctrl(CTRL_NAK, lease=self.CAPACITY_RETRY_AFTER),
                )
                return
            if lease is None:
                tunnel_ip = self.cloud.allocate_ip()
                lease = TunnelLease(
                    client_manet_ip=src_ip,
                    tunnel_ip=tunnel_ip,
                    expires_at=self.sim.now + self.LEASE_TIME,
                )
                self._leases[src_ip] = lease
                self._by_tunnel_ip[tunnel_ip] = lease
                self.cloud.attach_endpoint(tunnel_ip, self._make_downstream(lease))
                self.node.stats.increment("tunnel.leases_granted")
                if tracer is not None:
                    tracer.emit(
                        "tunnel.lease", self.node.ip, client=src_ip,
                        tunnel_ip=lease.tunnel_ip, renewed=False,
                    )
            else:
                lease.expires_at = self.sim.now + self.LEASE_TIME
                if tracer is not None:
                    tracer.emit(
                        "tunnel.lease", self.node.ip, client=src_ip,
                        tunnel_ip=lease.tunnel_ip, renewed=True,
                    )
            self._ctrl_socket.send(
                src_ip,
                sport,
                _encode_ctrl(CTRL_ACK, lease.tunnel_ip, int(self.LEASE_TIME)),
            )
        elif msg_type == CTRL_RELEASE:
            lease = self._leases.get(src_ip)
            if lease is not None:
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.emit(
                        "tunnel.release", self.node.ip, client=src_ip,
                        tunnel_ip=lease.tunnel_ip,
                    )
                self._drop_lease(lease)

    def _at_capacity(self) -> bool:
        if self.max_leases is None:
            return False
        now = self.sim.now
        return sum(1 for lease in self._leases.values() if lease.is_active(now)) >= self.max_leases

    def _drop_lease(self, lease: TunnelLease) -> None:
        self._leases.pop(lease.client_manet_ip, None)
        self._by_tunnel_ip.pop(lease.tunnel_ip, None)
        self.cloud.detach_endpoint(lease.tunnel_ip)

    def _expire_leases(self) -> None:
        now = self.sim.now
        for lease in list(self._leases.values()):
            if not lease.is_active(now):
                self._drop_lease(lease)
                self.node.stats.increment("tunnel.leases_expired")
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.emit(
                        "tunnel.lease_expired", self.node.ip,
                        client=lease.client_manet_ip, tunnel_ip=lease.tunnel_ip,
                    )

    # -- data plane ------------------------------------------------------------------
    def _on_upstream(self, data: bytes, src_ip: str, sport: int) -> None:
        """Client -> Internet: decapsulate and inject into the cloud."""
        if self.closed:
            return
        try:
            inner = decode_inner_packet(data)
        except CodecError:
            self.node.stats.increment("tunnel.bad_frames")
            return
        lease = self._leases.get(src_ip)
        if lease is not None and not lease.is_active(self.sim.now):
            self._drop_lease(lease)
            self.node.stats.increment("tunnel.leases_expired")
            lease = None
        if lease is None or inner.src != lease.tunnel_ip:
            # A NACK tells the client its lease is gone (e.g. this gateway
            # restarted, or the lease expired): it can tear down and
            # re-request immediately instead of waiting for the liveness
            # timeout while its upstream traffic silently blackholes.
            self.node.stats.increment("tunnel.unauthorized_frames")
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit("tunnel.nack", self.node.ip, client=src_ip)
            self._ctrl_socket.send(src_ip, PORT_SIPHOC_CTRL, _encode_ctrl(CTRL_NAK))
            return
        self.node.stats.increment("tunnel.upstream_packets")
        self.cloud.send(inner)

    def _make_downstream(self, lease: TunnelLease) -> Callable[[Packet], None]:
        def downstream(packet: Packet) -> None:
            """Internet -> client: encapsulate over the MANET."""
            if self.closed:
                return
            self.node.stats.increment("tunnel.downstream_packets")
            self._data_socket.send(
                lease.client_manet_ip, PORT_SIPHOC_TUNNEL, encode_inner_packet(packet)
            )

        return downstream


class TunnelClient:
    """Client-side tunnel endpoint: a virtual Internet interface on a node."""

    REQUEST_TIMEOUT = 3.0
    RENEW_INTERVAL = 20.0

    def __init__(self, node: Node, gateway_ip: str) -> None:
        self.node = node
        self.sim = node.sim
        self.gateway_ip = gateway_ip
        self.tunnel_ip: str | None = None
        self._ctrl_socket = node.bind_ephemeral(self._on_ctrl)
        self._data_socket = node.bind(PORT_SIPHOC_TUNNEL, self._on_downstream)
        # Unsolicited gateway NACKs (lease lost server-side) arrive on the
        # well-known control port, not our ephemeral request socket. Client
        # nodes never run a TunnelServer, so the port is normally free.
        try:
            self._nack_socket = node.bind(PORT_SIPHOC_CTRL, self._on_ctrl)
        except PortInUseError:
            self._nack_socket = None
        self._renew_task = None
        self._connect_callback: Callable[[bool], None] | None = None
        self._connect_timer = None
        self.closed = False
        self.last_ack_at: float | None = None
        self.on_disconnect: Callable[[], None] | None = None

    @property
    def connected(self) -> bool:
        return self.tunnel_ip is not None and not self.closed

    def connect(self, callback: Callable[[bool], None] | None = None) -> None:
        """Request a lease from the gateway; ``callback(success)`` when done."""
        self._connect_callback = callback
        self._ctrl_socket.send(self.gateway_ip, PORT_SIPHOC_CTRL, _encode_ctrl(CTRL_REQUEST))
        self._connect_timer = self.sim.schedule(self.REQUEST_TIMEOUT, self._connect_timeout)

    def _connect_timeout(self) -> None:
        if self.tunnel_ip is None and self._connect_callback is not None:
            callback, self._connect_callback = self._connect_callback, None
            callback(False)

    def _on_ctrl(self, data: bytes, src_ip: str, sport: int) -> None:
        if self.closed or src_ip != self.gateway_ip:
            return
        try:
            msg_type, address, lease = _decode_ctrl(data)
        except CodecError:
            return
        if msg_type == CTRL_NAK:
            self.node.stats.increment("tunnel.nacks_received")
            if self.tunnel_ip is not None:
                # The gateway no longer honors our lease: tear down now so
                # the Connection Provider can re-request without waiting
                # out the liveness deadline.
                self.disconnect()
            elif self._connect_callback is not None:
                callback, self._connect_callback = self._connect_callback, None
                if self._connect_timer is not None:
                    self._connect_timer.cancel()
                callback(False)
            return
        if msg_type != CTRL_ACK:
            return
        self.last_ack_at = self.sim.now
        first_ack = self.tunnel_ip is None
        if first_ack:
            self.tunnel_ip = address
            self.node.add_local_address(address)
            self.node.set_default_route("tunnel", self._upstream, priority=10)
            self._renew_task = self.sim.schedule_periodic(self.RENEW_INTERVAL, self._renew)
            self.node.stats.increment("tunnel.connected")
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    "tunnel.connected", self.node.ip, tunnel_ip=address,
                    gateway=self.gateway_ip,
                )
            if self._connect_timer is not None:
                self._connect_timer.cancel()
            if self._connect_callback is not None:
                callback, self._connect_callback = self._connect_callback, None
                callback(True)

    def _renew(self) -> None:
        self._ctrl_socket.send(self.gateway_ip, PORT_SIPHOC_CTRL, _encode_ctrl(CTRL_REQUEST))

    def disconnect(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._renew_task is not None:
            self._renew_task.stop()
        self._ctrl_socket.send(self.gateway_ip, PORT_SIPHOC_CTRL, _encode_ctrl(CTRL_RELEASE))
        if self.tunnel_ip is not None:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    "tunnel.disconnected", self.node.ip, tunnel_ip=self.tunnel_ip,
                    gateway=self.gateway_ip,
                )
            self.node.remove_local_address(self.tunnel_ip)
            self.node.clear_default_route("tunnel")
            self.tunnel_ip = None
        self._ctrl_socket.close()
        self._data_socket.close()
        if self._nack_socket is not None:
            self._nack_socket.close()
        if self.on_disconnect is not None:
            self.on_disconnect()

    # -- data plane ----------------------------------------------------------------
    def _upstream(self, packet: Packet) -> None:
        """Default-route hook: encapsulate Internet-bound traffic."""
        if not self.connected:
            self.node.stats.increment("tunnel.dropped_no_lease")
            return
        assert self.tunnel_ip is not None
        if is_manet_address(packet.src) or packet.src == "0.0.0.0":
            # Source NAT onto the tunnel interface so replies route back.
            packet = Packet(
                src=self.tunnel_ip,
                dst=packet.dst,
                payload=packet.payload,
                ttl=packet.ttl,
                uid=packet.uid,
            )
        self.node.stats.increment("tunnel.upstream_packets")
        self._data_socket.send(self.gateway_ip, PORT_SIPHOC_TUNNEL, encode_inner_packet(packet))

    def _on_downstream(self, data: bytes, src_ip: str, sport: int) -> None:
        if self.closed or src_ip != self.gateway_ip:
            return
        try:
            inner = decode_inner_packet(data)
        except CodecError:
            self.node.stats.increment("tunnel.bad_frames")
            return
        self.node.stats.increment("tunnel.downstream_packets")
        self.node.receive_wired(inner)
