"""Gateway Provider: publishes Internet connectivity to the MANET.

Runs on a node that has a wired attachment to the Internet cloud. It starts
a layer-2 tunnel server and announces the ``gateway.siphoc`` service via
MANET SLP, so every node's Connection Provider can find it and attach
itself to the Internet.
"""

from __future__ import annotations

from repro.core.manet_slp import ManetSlp
from repro.core.tunnel import TunnelServer
from repro.errors import GatewayError
from repro.netsim.internet import InternetCloud
from repro.netsim.node import Node
from repro.netsim.packet import PORT_SIPHOC_CTRL
from repro.slp.service import SERVICE_GATEWAY, ServiceUrl


class GatewayProvider:
    """Announces this node as an Internet gateway and serves tunnels."""

    def __init__(
        self,
        node: Node,
        cloud: InternetCloud,
        manet_slp: ManetSlp,
        advert_lifetime: float = 60.0,
        max_leases: int | None = None,
    ) -> None:
        self.node = node
        self.cloud = cloud
        self.manet_slp = manet_slp
        self.advert_lifetime = advert_lifetime
        #: Tunnel lease-capacity cap handed to the TunnelServer (§5f).
        self.max_leases = max_leases
        self.tunnel_server: TunnelServer | None = None
        self._service_url: ServiceUrl | None = None

    @property
    def running(self) -> bool:
        return self.tunnel_server is not None

    def start(self) -> "GatewayProvider":
        if self.running:
            return self
        if self.node.wired_ip is None:
            raise GatewayError(
                f"{self.node.hostname} has no Internet attachment; cannot be a gateway"
            )
        self.tunnel_server = TunnelServer(self.node, self.cloud, max_leases=self.max_leases)
        self._service_url = ServiceUrl(
            service_type=SERVICE_GATEWAY, host=self.node.ip, port=PORT_SIPHOC_CTRL
        )
        self.manet_slp.register(
            self._service_url,
            attributes={"wired": self.node.wired_ip},
            lifetime=self.advert_lifetime,
        )
        self.node.stats.increment("gateway.started")
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.emit(
                "gateway.up", self.node.ip, wired=self.node.wired_ip,
                url=str(self._service_url),
            )
        return self

    def stop(self) -> None:
        if not self.running:
            return
        assert self.tunnel_server is not None
        if self._service_url is not None:
            self.manet_slp.deregister(self._service_url)
            self._service_url = None
        self.tunnel_server.close()
        self.tunnel_server = None
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.emit("gateway.down", self.node.ip)

    def fail(self) -> None:
        """Abrupt (crash-like) shutdown: the SLP advert is *not* withdrawn.

        Remote caches keep the stale gateway entry until it expires, so
        Connection Providers will still try to attach to a dead gateway —
        the exact situation their failed-gateway cooldown handles. Used by
        fault injection (``GatewayDown(graceful=False)``).
        """
        if not self.running:
            return
        assert self.tunnel_server is not None
        self.manet_slp.forget_local(self._service_url)
        self._service_url = None
        self.tunnel_server.close()
        self.tunnel_server = None
        self.node.stats.increment("gateway.failed")
        tracer = self.node.sim.tracer
        if tracer is not None:
            tracer.emit("gateway.down", self.node.ip)
