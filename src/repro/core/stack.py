"""SiphocStack: the five-component deployment of Figure 1 on one node.

Composes routing daemon, routing handler plugin, MANET SLP, SIPHoc proxy,
Connection Provider, Gateway Provider (when the node has Internet) and any
number of softphones — the complete per-node system the paper deploys on
laptops and iPAQ handhelds.
"""

from __future__ import annotations

from repro.core.config import SipAccount, SiphocConfig
from repro.core.connection import ConnectionProvider, HandoverPolicy
from repro.core.gateway import GatewayProvider
from repro.core.handlers import make_handler
from repro.core.manet_slp import ManetSlp
from repro.core.proxy import SiphocProxy
from repro.core.softphone import AnswerMode, SoftPhone
from repro.errors import ConfigError
from repro.netsim.internet import InternetCloud
from repro.netsim.node import Node
from repro.routing.aodv import Aodv
from repro.routing.base import RoutingProtocol
from repro.routing.olsr import Olsr


def make_routing(node: Node, protocol: str) -> RoutingProtocol:
    if protocol == "aodv":
        return Aodv(node)
    if protocol == "olsr":
        return Olsr(node)
    raise ConfigError(f"unknown routing protocol {protocol!r} (use 'aodv' or 'olsr')")


class SiphocStack:
    """All SIPHoc components on one MANET node."""

    def __init__(
        self,
        node: Node,
        routing: str | RoutingProtocol = "aodv",
        cloud: InternetCloud | None = None,
        config: SiphocConfig | None = None,
        run_connection_provider: bool = True,
        gateway_role: bool | None = None,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.config = config or SiphocConfig()
        self.cloud = cloud
        if isinstance(routing, str):
            self.routing: RoutingProtocol = make_routing(node, routing)
        else:
            self.routing = routing
        self.handler = make_handler(self.routing)
        self.manet_slp = ManetSlp(node, self.handler, self.config.slp)
        self.connection: ConnectionProvider | None = None
        if run_connection_provider and node.wired_ip is None:
            self.connection = ConnectionProvider(
                node, self.manet_slp, poll_interval=self.config.gateway_poll_interval
            )
        self.proxy = SiphocProxy(
            node,
            self.manet_slp,
            config=self.config,
            connection=self.connection,
            dns_resolver=cloud.dns.resolve if cloud is not None else None,
        )
        self.gateway: GatewayProvider | None = None
        # gateway_role=None keeps the legacy inference (wired attachment =>
        # gateway); multihomed phone nodes pass False so a wired uplink for
        # §5k handover doesn't also advertise gateway.siphoc to the MANET.
        is_gateway = gateway_role if gateway_role is not None else node.wired_ip is not None
        if is_gateway:
            if node.wired_ip is None:
                raise ConfigError("a gateway node needs an Internet attachment")
            if cloud is None:
                raise ConfigError("a gateway node needs the Internet cloud reference")
            self.gateway = GatewayProvider(
                node, cloud, self.manet_slp, max_leases=self.config.gateway_max_leases
            )
        self.handover: HandoverPolicy | None = None
        if self.config.handover is not None:
            self.handover = HandoverPolicy(node, self, self.config.handover)
        self.phones: list[SoftPhone] = []
        self._next_phone_port = 5070
        self._started = False

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "SiphocStack":
        if self._started:
            return self
        self._started = True
        self.routing.start()
        self.manet_slp.start()
        if self.connection is not None:
            self.connection.start()
        if self.gateway is not None:
            self.gateway.start()
        if self.handover is not None:
            self.handover.start()
        return self

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        if self.handover is not None:
            self.handover.stop()
        for phone in self.phones:
            phone.stop()
        if self.gateway is not None:
            self.gateway.stop()
        if self.connection is not None:
            self.connection.stop()
        self.manet_slp.stop()
        self.proxy.close()
        self.routing.stop()

    def crash(self) -> None:
        """Abrupt failure of the whole node: no goodbye signaling escapes.

        Marks the node down *first* — so the BYEs, SLP withdrawals and
        tunnel releases the component stop() paths attempt are silently
        swallowed by the dead interfaces — then tears the components down
        and wipes the node's transport state (:meth:`Node.crash`). After
        this, a fresh :class:`SiphocStack` can be built on the same node
        once :meth:`Node.restart` brings it back up.
        """
        self.node.up = False
        self.stop()
        self.node.crash()

    # -- phones ---------------------------------------------------------------------
    def add_phone(
        self,
        account: SipAccount | None = None,
        username: str | None = None,
        domain: str = "voicehoc.ch",
        register: bool = True,
        answer_mode: AnswerMode = AnswerMode.AUTO,
        **phone_kwargs,
    ) -> SoftPhone:
        """Install a softphone on this node (Figure 2 configuration).

        Either pass a full :class:`SipAccount` or just a ``username`` (the
        account then uses the default localhost outbound proxy).
        """
        if account is None:
            if username is None:
                raise ConfigError("add_phone needs an account or a username")
            account = SipAccount(username=username, domain=domain)
        port = self._next_phone_port
        self._next_phone_port += 2
        phone = SoftPhone(
            self.node, account, port=port, answer_mode=answer_mode, **phone_kwargs
        )
        self.proxy.configure_account(account)
        self.phones.append(phone)
        if self.handover is not None:
            self.handover.adopt_phone(phone)
        if self._started and register:
            phone.start()
        elif register:
            # Start lazily on stack start.
            self.sim.schedule(0.0, phone.start)
        return phone

    @property
    def internet_available(self) -> bool:
        return self.proxy.internet_available
